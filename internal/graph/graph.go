// Package graph implements the road-network substrate of the paper: a
// connected graph G = (V ∪ P, E) where V are road vertices, P are PoI
// vertices embedded in the network, and E are weighted edges (§3).
//
// Graphs are built with a Builder and frozen into a compact CSR
// (compressed sparse row) adjacency representation that the Dijkstra
// family iterates over without allocation. Both directed and undirected
// graphs are supported (§6 "Directed graphs"); an undirected edge is
// stored as two arcs.
//
// PoI vertices carry one or more category ids (§6 "PoI with multiple
// categories"); the semantics of those ids (trees, similarity) live in
// package taxonomy.
package graph

import (
	"fmt"
	"math"

	"skysr/internal/geo"
)

// VertexID identifies a vertex (road or PoI) in a Graph. IDs are dense,
// starting at 0.
type VertexID = int32

// NoVertex is the sentinel for "no vertex".
const NoVertex VertexID = -1

// CategoryID identifies a category in a taxonomy.Forest. It is declared
// here (rather than importing taxonomy) so the graph layer stays
// independent of the semantic layer.
type CategoryID = int32

// NoCategory marks a road vertex that is not a PoI.
const NoCategory CategoryID = -1

// Graph is an immutable weighted graph in CSR form. Create one with a
// Builder.
type Graph struct {
	directed bool

	points []geo.Point

	// CSR adjacency: arcs out of vertex v occupy
	// targets[offsets[v]:offsets[v+1]] and weights[...] in parallel.
	// weights always holds each arc's lower-bound cost: the static weight
	// for plain arcs, the profile minimum for time-profiled arcs — so
	// every distance derived from the raw weights is an admissible lower
	// bound under the graph's Metric (see metric.go).
	offsets []int32
	targets []VertexID
	weights []float64

	// tt is the optional time-dependent cost table; nil for static
	// graphs.
	tt *TimeTable

	// cat holds the primary category of each vertex (NoCategory for road
	// vertices). extraCats holds additional categories for the §6
	// multi-category extension; it is nil for most graphs.
	cat       []CategoryID
	extraCats map[VertexID][]CategoryID

	pois     []VertexID // all PoI vertices, ascending
	numEdges int        // logical edge count (undirected edges counted once)
}

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// NumVertices returns the total number of vertices (road + PoI).
func (g *Graph) NumVertices() int { return len(g.points) }

// NumPoIs returns the number of PoI vertices.
func (g *Graph) NumPoIs() int { return len(g.pois) }

// NumRoadVertices returns the number of non-PoI vertices.
func (g *Graph) NumRoadVertices() int { return len(g.points) - len(g.pois) }

// NumEdges returns the number of logical edges (an undirected edge counts
// once).
func (g *Graph) NumEdges() int { return g.numEdges }

// Point returns the coordinates of v.
func (g *Graph) Point(v VertexID) geo.Point { return g.points[v] }

// IsPoI reports whether v is a PoI vertex.
func (g *Graph) IsPoI(v VertexID) bool { return g.cat[v] != NoCategory }

// PrimaryCategory returns the first category of v, or NoCategory for road
// vertices.
func (g *Graph) PrimaryCategory(v VertexID) CategoryID { return g.cat[v] }

// Categories returns all categories of v (primary first). The returned
// slice must not be mutated. Road vertices return nil.
func (g *Graph) Categories(v VertexID) []CategoryID {
	if g.cat[v] == NoCategory {
		return nil
	}
	if g.extraCats == nil {
		return g.cat[v : v+1]
	}
	extra, ok := g.extraCats[v]
	if !ok {
		return g.cat[v : v+1]
	}
	return extra // extra already includes the primary at position 0
}

// PoIVertices returns all PoI vertices in ascending id order. The returned
// slice must not be mutated.
func (g *Graph) PoIVertices() []VertexID { return g.pois }

// Neighbors returns the out-neighbors of v and the parallel arc weights.
// The returned slices alias internal storage and must not be mutated.
func (g *Graph) Neighbors(v VertexID) ([]VertexID, []float64) {
	lo, hi := g.offsets[v], g.offsets[v+1]
	return g.targets[lo:hi], g.weights[lo:hi]
}

// Degree returns the out-degree of v.
func (g *Graph) Degree(v VertexID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// EdgeWeight returns the weight of the arc u->v and whether it exists. With
// parallel arcs the smallest weight is returned.
func (g *Graph) EdgeWeight(u, v VertexID) (float64, bool) {
	ts, ws := g.Neighbors(u)
	best := math.Inf(1)
	found := false
	for i, t := range ts {
		if t == v && ws[i] < best {
			best = ws[i]
			found = true
		}
	}
	return best, found
}

// Bounds returns the bounding box of all vertex coordinates.
func (g *Graph) Bounds() geo.Rect {
	var r geo.Rect
	for _, p := range g.points {
		r.Extend(p)
	}
	return r
}

// MemoryFootprintBytes estimates the heap bytes held by the CSR arrays.
// The experiment harness uses it for the Table 6 memory accounting.
func (g *Graph) MemoryFootprintBytes() int64 {
	b := int64(len(g.points)) * 16
	b += int64(len(g.offsets)) * 4
	b += int64(len(g.targets)) * 4
	b += int64(len(g.weights)) * 8
	b += int64(len(g.cat)) * 4
	b += int64(len(g.pois)) * 4
	if g.tt != nil {
		b += g.tt.memoryFootprintBytes()
	}
	return b
}

// ComponentOf returns the set of vertices reachable from start ignoring
// direction (weakly connected component), as a bitmap indexed by vertex id.
func (g *Graph) ComponentOf(start VertexID) []bool {
	seen := make([]bool, g.NumVertices())
	if g.NumVertices() == 0 {
		return seen
	}
	// For directed graphs weak connectivity needs reverse arcs too; build
	// a temporary reverse adjacency only in that case.
	var rev [][]VertexID
	if g.directed {
		rev = make([][]VertexID, g.NumVertices())
		for v := VertexID(0); int(v) < g.NumVertices(); v++ {
			ts, _ := g.Neighbors(v)
			for _, t := range ts {
				rev[t] = append(rev[t], v)
			}
		}
	}
	stack := []VertexID{start}
	seen[start] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ts, _ := g.Neighbors(v)
		for _, t := range ts {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
		if g.directed {
			for _, t := range rev[v] {
				if !seen[t] {
					seen[t] = true
					stack = append(stack, t)
				}
			}
		}
	}
	return seen
}

// LargestComponent returns the vertices of the largest weakly connected
// component.
func (g *Graph) LargestComponent() []VertexID {
	n := g.NumVertices()
	assigned := make([]bool, n)
	var best []VertexID
	for v := VertexID(0); int(v) < n; v++ {
		if assigned[v] {
			continue
		}
		comp := g.ComponentOf(v)
		var members []VertexID
		for u := VertexID(0); int(u) < n; u++ {
			if comp[u] {
				assigned[u] = true
				members = append(members, u)
			}
		}
		if len(members) > len(best) {
			best = members
		}
	}
	return best
}

// IsConnected reports whether the graph is (weakly) connected.
func (g *Graph) IsConnected() bool {
	if g.NumVertices() == 0 {
		return true
	}
	comp := g.ComponentOf(0)
	for _, ok := range comp {
		if !ok {
			return false
		}
	}
	return true
}

// Reversed returns a graph with every arc direction flipped; vertices, PoI
// categories and coordinates are shared. For undirected graphs it returns
// the receiver itself. The "SkySR with destination" extension (§6) uses it
// to compute distances TO the destination on directed networks.
//
// The time table is deliberately not carried onto a reversed directed
// graph: a backward search cannot know arrival times, so every reverse
// consumer (destination tables, index row builds) searches the
// lower-bound graph — which is exactly the reversed weights array.
func (g *Graph) Reversed() *Graph {
	if !g.directed {
		return g
	}
	n := g.NumVertices()
	deg := make([]int32, n+1)
	for _, t := range g.targets {
		deg[t+1]++
	}
	offsets := make([]int32, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + deg[i+1]
	}
	targets := make([]VertexID, len(g.targets))
	weights := make([]float64, len(g.weights))
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	for v := VertexID(0); int(v) < n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		for i := lo; i < hi; i++ {
			t := g.targets[i]
			targets[cursor[t]] = v
			weights[cursor[t]] = g.weights[i]
			cursor[t]++
		}
	}
	return &Graph{
		directed:  true,
		points:    g.points,
		offsets:   offsets,
		targets:   targets,
		weights:   weights,
		cat:       g.cat,
		extraCats: g.extraCats,
		pois:      g.pois,
		numEdges:  g.numEdges,
	}
}

// edge is a builder-side edge record.
type edge struct {
	u, v    VertexID
	w       float64
	deleted bool
}

// Builder accumulates vertices and edges and produces an immutable Graph.
type Builder struct {
	directed  bool
	points    []geo.Point
	cat       []CategoryID
	extraCats map[VertexID][]CategoryID
	edges     []edge
	deleted   int

	// period is the time-domain length for edge profiles (0 = unset,
	// DefaultPeriod applies); profiles maps builder edge indexes to their
	// travel-time profiles.
	period   float64
	profiles map[int]Profile
}

// SetTimePeriod declares the time-domain length edge profiles repeat
// over. It must be called before the first SetEdgeProfile (profiles are
// validated against the period as they are attached).
func (b *Builder) SetTimePeriod(period float64) error {
	if period <= 0 || math.IsNaN(period) || math.IsInf(period, 0) {
		return fmt.Errorf("%w: period %v is not positive and finite", ErrBadProfile, period)
	}
	if len(b.profiles) > 0 && period != b.TimePeriod() {
		return fmt.Errorf("%w: period changed to %v after profiles were attached", ErrBadProfile, period)
	}
	b.period = period
	return nil
}

// TimePeriod returns the builder's effective profile period.
func (b *Builder) TimePeriod() float64 {
	if b.period > 0 {
		return b.period
	}
	return DefaultPeriod
}

// SetEdgeProfile attaches a time-dependent travel-time profile to a
// previously added edge (both arcs, on undirected graphs). The edge's
// static weight is superseded: in the built graph its weight column
// holds the profile's minimum — the lower-bound cost — and traversal
// cost comes from the profile. The profile is validated against the
// builder's period immediately.
func (b *Builder) SetEdgeProfile(idx int, p Profile) error {
	if idx < 0 || idx >= len(b.edges) || b.edges[idx].deleted {
		return fmt.Errorf("graph: SetEdgeProfile on dead edge index %d", idx)
	}
	if err := p.Validate(b.TimePeriod()); err != nil {
		return fmt.Errorf("edge %d: %w", idx, err)
	}
	if b.profiles == nil {
		b.profiles = make(map[int]Profile)
	}
	b.profiles[idx] = p.clone()
	return nil
}

// NewBuilder returns a Builder for a directed or undirected graph.
func NewBuilder(directed bool) *Builder {
	return &Builder{directed: directed}
}

// Directed reports the directedness the builder was created with.
func (b *Builder) Directed() bool { return b.directed }

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.points) }

// NumEdges returns the number of live edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) - b.deleted }

// AddVertex adds a road vertex at p and returns its id.
func (b *Builder) AddVertex(p geo.Point) VertexID {
	b.points = append(b.points, p)
	b.cat = append(b.cat, NoCategory)
	return VertexID(len(b.points) - 1)
}

// AddPoI adds a PoI vertex at p with the given category and returns its id.
func (b *Builder) AddPoI(p geo.Point, c CategoryID) VertexID {
	if c == NoCategory {
		panic("graph: AddPoI with NoCategory")
	}
	b.points = append(b.points, p)
	b.cat = append(b.cat, c)
	return VertexID(len(b.points) - 1)
}

// AddCategory attaches an additional category to an existing PoI vertex
// (the §6 multi-category extension).
func (b *Builder) AddCategory(v VertexID, c CategoryID) {
	if b.cat[v] == NoCategory {
		panic("graph: AddCategory on a road vertex")
	}
	if c == b.cat[v] {
		return
	}
	if b.extraCats == nil {
		b.extraCats = make(map[VertexID][]CategoryID)
	}
	cur, ok := b.extraCats[v]
	if !ok {
		cur = []CategoryID{b.cat[v]}
	}
	for _, existing := range cur {
		if existing == c {
			return
		}
	}
	b.extraCats[v] = append(cur, c)
}

// AddEdge adds an edge from u to v with weight w (both directions when the
// builder is undirected). It returns the edge index usable with RemoveEdge.
func (b *Builder) AddEdge(u, v VertexID, w float64) int {
	if w < 0 || math.IsNaN(w) {
		panic(fmt.Sprintf("graph: invalid edge weight %v", w))
	}
	if u == v {
		panic("graph: self-loop edges are not allowed")
	}
	b.edges = append(b.edges, edge{u: u, v: v, w: w})
	return len(b.edges) - 1
}

// RemoveEdge tombstones a previously added edge (used when splitting an
// edge to embed a PoI). Removing twice is a no-op.
func (b *Builder) RemoveEdge(idx int) {
	if !b.edges[idx].deleted {
		b.edges[idx].deleted = true
		b.deleted++
	}
}

// Edge returns the endpoints and weight of a live builder edge.
func (b *Builder) Edge(idx int) (u, v VertexID, w float64, live bool) {
	e := b.edges[idx]
	return e.u, e.v, e.w, !e.deleted
}

// Point returns the coordinates of vertex v as added so far.
func (b *Builder) Point(v VertexID) geo.Point { return b.points[v] }

// Build freezes the builder into an immutable CSR Graph. The builder can
// keep being used afterwards (Build copies what it needs).
func (b *Builder) Build() *Graph {
	n := len(b.points)
	arcFactor := 1
	if !b.directed {
		arcFactor = 2
	}
	live := len(b.edges) - b.deleted

	deg := make([]int32, n+1)
	for _, e := range b.edges {
		if e.deleted {
			continue
		}
		deg[e.u+1]++
		if !b.directed {
			deg[e.v+1]++
		}
	}
	offsets := make([]int32, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + deg[i+1]
	}
	targets := make([]VertexID, live*arcFactor)
	weights := make([]float64, live*arcFactor)
	// Time-dependent state: profiled arcs remember their profile id and
	// store the profile minimum as their weight (the lower-bound graph
	// invariant every pruning structure relies on). A declared period is
	// sticky: once a builder names a time domain, the built graph keeps a
	// (possibly profile-less) time table so the period survives edits and
	// serialization even after the last profile is cleared.
	var tt *TimeTable
	if len(b.profiles) > 0 || b.period > 0 {
		tt = &TimeTable{period: b.TimePeriod(), arcProf: make([]int32, live*arcFactor)}
		for i := range tt.arcProf {
			tt.arcProf[i] = -1
		}
	}
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	for i, e := range b.edges {
		if e.deleted {
			continue
		}
		w := e.w
		pid := int32(-1)
		if tt != nil {
			if p, ok := b.profiles[i]; ok {
				pid = int32(len(tt.profiles))
				tt.profiles = append(tt.profiles, p.clone())
				w = p.Min()
			}
		}
		targets[cursor[e.u]] = e.v
		weights[cursor[e.u]] = w
		if pid >= 0 {
			tt.arcProf[cursor[e.u]] = pid
		}
		cursor[e.u]++
		if !b.directed {
			targets[cursor[e.v]] = e.u
			weights[cursor[e.v]] = w
			if pid >= 0 {
				tt.arcProf[cursor[e.v]] = pid
			}
			cursor[e.v]++
		}
	}

	if tt != nil {
		tt.finalize()
	}

	cat := make([]CategoryID, n)
	copy(cat, b.cat)
	var pois []VertexID
	for v := 0; v < n; v++ {
		if cat[v] != NoCategory {
			pois = append(pois, VertexID(v))
		}
	}
	points := make([]geo.Point, n)
	copy(points, b.points)

	var extra map[VertexID][]CategoryID
	if len(b.extraCats) > 0 {
		extra = make(map[VertexID][]CategoryID, len(b.extraCats))
		for v, cs := range b.extraCats {
			extra[v] = append([]CategoryID(nil), cs...)
		}
	}

	return &Graph{
		directed:  b.directed,
		points:    points,
		offsets:   offsets,
		targets:   targets,
		weights:   weights,
		tt:        tt,
		cat:       cat,
		extraCats: extra,
		pois:      pois,
		numEdges:  live,
	}
}
