package graph

import (
	"fmt"
	"math"

	"skysr/internal/geo"
)

// EdgeChange names one edge (or arc, on directed graphs) and a weight. It
// is the operand of the weight-set and edge-add/remove entries of Edits;
// RemoveEdges ignores the Weight field.
type EdgeChange struct {
	U, V   VertexID
	Weight float64
}

// CategoryChange reassigns the category list of an existing vertex. An
// empty Categories list turns a PoI back into a plain road vertex; a
// non-empty list makes the vertex a PoI with Categories[0] as its primary
// category.
type CategoryChange struct {
	V          VertexID
	Categories []CategoryID
}

// ProfileChange attaches a time-dependent travel-time profile to an
// existing edge, or (with Clear) detaches one. Attaching supersedes the
// edge's static weight: the weight column keeps the profile's minimum
// (the lower-bound graph invariant) and traversal cost comes from the
// profile. Clearing turns the edge back into a static edge at its
// current lower-bound weight.
type ProfileChange struct {
	U, V    VertexID
	Profile Profile // ignored when Clear
	Clear   bool
}

// Edits is an atomic batch of graph modifications. Apply validates the
// whole batch against the receiver before building anything, so a graph is
// never half-updated.
//
// The vertex set is fixed: edits change weights, arcs and categories of
// existing vertices. (Growing the network is a dataset rebuild, not a live
// update — every distance row and searcher workspace is sized to the
// vertex count.)
type Edits struct {
	// SetWeights assigns a new weight to existing edges. On undirected
	// graphs the edge is matched in either orientation; parallel edges
	// between the same endpoints all receive the new weight. A weight
	// edit makes its edge static: any attached time profile is dropped.
	SetWeights []EdgeChange
	// AddEdges appends new edges (both arcs on undirected graphs).
	AddEdges []EdgeChange
	// RemoveEdges deletes existing edges (all parallel edges between the
	// named endpoints; both orientations on undirected graphs).
	RemoveEdges []EdgeChange
	// SetCategories replaces vertex category lists (PoI add, remove and
	// recategorize).
	SetCategories []CategoryChange
	// SetProfiles attaches or clears time-dependent profiles on existing
	// edges (both arcs on undirected graphs; all parallel edges between
	// the endpoints). Profiles are validated against the graph's time
	// period; invalid ones reject the whole batch with ErrBadProfile.
	SetProfiles []ProfileChange
}

// Empty reports whether the batch contains no edits.
func (e *Edits) Empty() bool {
	return len(e.SetWeights) == 0 && len(e.AddEdges) == 0 &&
		len(e.RemoveEdges) == 0 && len(e.SetCategories) == 0 &&
		len(e.SetProfiles) == 0
}

// Structural reports whether the batch changes the arc structure (edge
// additions or removals) rather than just weights and categories.
func (e *Edits) Structural() bool {
	return len(e.AddEdges) > 0 || len(e.RemoveEdges) > 0
}

// pairKey canonicalizes an edge endpoint pair: order-sensitive on directed
// graphs, order-free on undirected ones (where u→v and v→u are the same
// edge).
func (g *Graph) pairKey(u, v VertexID) [2]VertexID {
	if !g.directed && u > v {
		u, v = v, u
	}
	return [2]VertexID{u, v}
}

// validate checks every edit against g. It returns the canonical-pair maps
// the application paths reuse, so validation and application cannot drift.
func (g *Graph) validate(e Edits) (setW map[[2]VertexID]float64, removed map[[2]VertexID]bool, setProf map[[2]VertexID]*ProfileChange, err error) {
	n := VertexID(g.NumVertices())
	checkVertex := func(v VertexID, what string) error {
		if v < 0 || v >= n {
			return fmt.Errorf("graph: %s names unknown vertex %d", what, v)
		}
		return nil
	}
	checkEdgeOperand := func(c EdgeChange, what string, needWeight, mustExist bool) error {
		if err := checkVertex(c.U, what); err != nil {
			return err
		}
		if err := checkVertex(c.V, what); err != nil {
			return err
		}
		if c.U == c.V {
			return fmt.Errorf("graph: %s (%d,%d) is a self-loop", what, c.U, c.V)
		}
		if needWeight && (c.Weight < 0 || math.IsNaN(c.Weight) || math.IsInf(c.Weight, 0)) {
			return fmt.Errorf("graph: %s (%d,%d) has invalid weight %v", what, c.U, c.V, c.Weight)
		}
		if mustExist {
			if _, ok := g.EdgeWeight(c.U, c.V); !ok {
				return fmt.Errorf("graph: %s names missing edge (%d,%d)", what, c.U, c.V)
			}
		}
		return nil
	}

	touched := map[[2]VertexID]string{}
	claim := func(u, v VertexID, what string) error {
		key := g.pairKey(u, v)
		if prev, ok := touched[key]; ok {
			return fmt.Errorf("graph: edge (%d,%d) appears in both %s and %s edits", u, v, prev, what)
		}
		touched[key] = what
		return nil
	}

	setW = make(map[[2]VertexID]float64, len(e.SetWeights))
	for _, c := range e.SetWeights {
		if err := checkEdgeOperand(c, "weight edit", true, true); err != nil {
			return nil, nil, nil, err
		}
		if err := claim(c.U, c.V, "weight"); err != nil {
			return nil, nil, nil, err
		}
		setW[g.pairKey(c.U, c.V)] = c.Weight
	}
	for _, c := range e.AddEdges {
		if err := checkEdgeOperand(c, "edge addition", true, false); err != nil {
			return nil, nil, nil, err
		}
		if err := claim(c.U, c.V, "add"); err != nil {
			return nil, nil, nil, err
		}
	}
	removed = make(map[[2]VertexID]bool, len(e.RemoveEdges))
	for _, c := range e.RemoveEdges {
		if err := checkEdgeOperand(c, "edge removal", false, true); err != nil {
			return nil, nil, nil, err
		}
		if err := claim(c.U, c.V, "remove"); err != nil {
			return nil, nil, nil, err
		}
		removed[g.pairKey(c.U, c.V)] = true
	}
	setProf = make(map[[2]VertexID]*ProfileChange, len(e.SetProfiles))
	for i := range e.SetProfiles {
		c := &e.SetProfiles[i]
		if err := checkEdgeOperand(EdgeChange{U: c.U, V: c.V}, "profile edit", false, true); err != nil {
			return nil, nil, nil, err
		}
		if err := claim(c.U, c.V, "profile"); err != nil {
			return nil, nil, nil, err
		}
		if !c.Clear {
			if err := c.Profile.Validate(g.TimePeriod()); err != nil {
				return nil, nil, nil, fmt.Errorf("graph: profile edit (%d,%d): %w", c.U, c.V, err)
			}
		}
		setProf[g.pairKey(c.U, c.V)] = c
	}

	seenV := map[VertexID]bool{}
	for _, c := range e.SetCategories {
		if err := checkVertex(c.V, "category edit"); err != nil {
			return nil, nil, nil, err
		}
		if seenV[c.V] {
			return nil, nil, nil, fmt.Errorf("graph: vertex %d appears in two category edits", c.V)
		}
		seenV[c.V] = true
		seenC := map[CategoryID]bool{}
		for _, cat := range c.Categories {
			if cat == NoCategory {
				return nil, nil, nil, fmt.Errorf("graph: category edit of vertex %d lists NoCategory", c.V)
			}
			if seenC[cat] {
				return nil, nil, nil, fmt.Errorf("graph: category edit of vertex %d repeats category %d", c.V, cat)
			}
			seenC[cat] = true
		}
	}
	return setW, removed, setProf, nil
}

// Apply returns a new graph with the batch applied; the receiver is
// untouched, so snapshots holding it stay valid (copy-on-write). Weight-
// and category-only batches share the receiver's points and CSR structure
// and clone just the arrays they patch; batches that add or remove edges
// rebuild the adjacency in the same canonical order the text serialization
// uses (ascending source vertex, then stored arc order, additions last),
// which keeps an applied graph arc-for-arc identical to a save/load round
// trip of itself.
func (g *Graph) Apply(e Edits) (*Graph, error) {
	setW, removed, setProf, err := g.validate(e)
	if err != nil {
		return nil, err
	}

	out := *g // shallow copy: immutable fields are shared

	if !e.Structural() {
		if len(e.SetWeights) > 0 || len(e.SetProfiles) > 0 {
			out.patchCosts(g, setW, setProf)
		}
	} else {
		if err := out.rebuildArcs(g, e, setW, removed, setProf); err != nil {
			return nil, err
		}
	}

	if len(e.SetCategories) > 0 {
		cat := append([]CategoryID(nil), g.cat...)
		var extra map[VertexID][]CategoryID
		if g.extraCats != nil {
			extra = make(map[VertexID][]CategoryID, len(g.extraCats))
			for v, cs := range g.extraCats {
				extra[v] = cs // shared: replaced wholesale below when edited
			}
		}
		for _, c := range e.SetCategories {
			delete(extra, c.V)
			if len(c.Categories) == 0 {
				cat[c.V] = NoCategory
				continue
			}
			cat[c.V] = c.Categories[0]
			if len(c.Categories) > 1 {
				if extra == nil {
					extra = make(map[VertexID][]CategoryID)
				}
				extra[c.V] = append([]CategoryID(nil), c.Categories...)
			}
		}
		if len(extra) == 0 {
			extra = nil
		}
		var pois []VertexID
		for v := VertexID(0); int(v) < len(cat); v++ {
			if cat[v] != NoCategory {
				pois = append(pois, v)
			}
		}
		out.cat, out.extraCats, out.pois = cat, extra, pois
	}
	return &out, nil
}

// patchCosts clones the weight column (and, when needed, the time table)
// of out and applies the weight and profile edits. A weight edit turns
// its edge static — its profile, if any, is dropped — and a profile edit
// sets the edge's weight to the profile minimum, preserving the
// lower-bound-graph invariant. The new time table is rebuilt compactly:
// only profiles still referenced by an arc survive.
func (out *Graph) patchCosts(g *Graph, setW map[[2]VertexID]float64, setProf map[[2]VertexID]*ProfileChange) {
	weights := append([]float64(nil), g.weights...)
	var arcProf []int32
	var profiles []Profile
	if g.tt != nil || len(setProf) > 0 {
		arcProf = make([]int32, len(g.targets))
		for i := range arcProf {
			arcProf[i] = -1
		}
	}
	oldToNew := map[int32]int32{}
	chgToNew := map[*ProfileChange]int32{}
	for lo, u := int32(0), VertexID(0); int(u) < g.NumVertices(); u++ {
		hi := g.offsets[u+1]
		for i := lo; i < hi; i++ {
			key := g.pairKey(u, g.targets[i])
			if w, ok := setW[key]; ok {
				weights[i] = w
				continue // weight edit: the edge is static now
			}
			if pc, ok := setProf[key]; ok {
				if pc.Clear {
					continue // static at its current lower-bound weight
				}
				pid, ok2 := chgToNew[pc]
				if !ok2 {
					pid = int32(len(profiles))
					profiles = append(profiles, pc.Profile.clone())
					chgToNew[pc] = pid
				}
				arcProf[i] = pid
				weights[i] = pc.Profile.Min()
				continue
			}
			if g.tt != nil {
				if op := g.tt.arcProf[i]; op >= 0 {
					pid, ok2 := oldToNew[op]
					if !ok2 {
						pid = int32(len(profiles))
						profiles = append(profiles, g.tt.profiles[op])
						oldToNew[op] = pid
					}
					arcProf[i] = pid
				}
			}
		}
		lo = hi
	}
	out.weights = weights
	if len(profiles) > 0 || g.tt != nil {
		// Keep the time table even when no profiles remain: the declared
		// period is part of the dataset's semantics (clearing the last
		// profile must not silently revert the time domain).
		out.tt = &TimeTable{period: g.TimePeriod(), arcProf: arcProf, profiles: profiles}
		out.tt.finalize()
	} else {
		out.tt = nil
	}
}

// rebuildArcs regenerates the CSR arrays of out from g's logical edge list
// with removals, weight edits, profile edits and additions applied, in
// canonical order.
func (out *Graph) rebuildArcs(g *Graph, e Edits, setW map[[2]VertexID]float64, removed map[[2]VertexID]bool, setProf map[[2]VertexID]*ProfileChange) error {
	b := NewBuilder(g.directed)
	if g.tt != nil {
		// Forward the declared period (only when one exists: forwarding
		// the default would force a time table onto plain static graphs).
		if err := b.SetTimePeriod(g.tt.period); err != nil {
			return err
		}
	}
	for v := VertexID(0); int(v) < g.NumVertices(); v++ {
		// Category state is patched separately; the builder only needs the
		// vertex slots so edge ids line up.
		b.AddVertex(geo.Point{})
	}
	for u := VertexID(0); int(u) < g.NumVertices(); u++ {
		ts, ws := g.Neighbors(u)
		base := g.ArcBase(u)
		for i, t := range ts {
			if !g.directed && u > t {
				continue // the u < t arc already emitted this logical edge
			}
			key := g.pairKey(u, t)
			if removed[key] {
				continue
			}
			w := ws[i]
			var prof *Profile
			if p, ok := g.ArcProfile(base + int32(i)); ok {
				prof = &p
			}
			if nw, ok := setW[key]; ok {
				w, prof = nw, nil // weight edit: the edge is static now
			} else if pc, ok := setProf[key]; ok {
				if pc.Clear {
					prof = nil
				} else {
					prof = &pc.Profile
				}
			}
			idx := b.AddEdge(u, t, w)
			if prof != nil {
				if err := b.SetEdgeProfile(idx, *prof); err != nil {
					return err
				}
			}
		}
	}
	for _, c := range e.AddEdges {
		b.AddEdge(c.U, c.V, c.Weight)
	}
	built := b.Build()
	out.offsets, out.targets, out.weights, out.numEdges, out.tt =
		built.offsets, built.targets, built.weights, built.numEdges, built.tt
	return nil
}
