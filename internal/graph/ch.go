// Contraction hierarchies over the lower-bound weight column.
//
// BuildCH preprocesses a graph into a CHOverlay: vertices are contracted
// one by one in edge-difference order, each contraction inserting the
// shortcuts that preserve shortest-path distances among the vertices not
// yet contracted, and the surviving arc set (original arcs plus shortcuts)
// is split into an upward half (arcs toward higher contraction ranks) and
// a downward half (arcs toward lower ranks). A bidirectional search that
// only ever climbs ranks (dijkstra.CH) then answers point-to-point
// distance queries by meeting at a peak vertex, and a PHAST-style linear
// sweep answers one-to-many queries without a priority queue.
//
// The overlay is built over the graph's weight column — each arc's
// lower-bound cost under the PR5 metric seam — so every overlay distance
// is an admissible lower bound of the corresponding time-dependent travel
// time, by the same argument that keeps the §5.3.3 bounds and the
// category-index rows exact (see graph/metric.go).
//
// Floating-point discipline: shortcut weights and query sums accumulate
// with addDown, which never rounds a partial sum upward. An overlay
// distance is therefore ≤ the exact real-valued shortest-path length
// regardless of association order; consumers that compare overlay values
// against sequentially-summed float64 route lengths additionally round
// the final value down to float32 (dijkstra.LowerBound32), absorbing the
// association slack the same way the category-index rows do. On weights
// whose sums are exactly representable (the property-test regime) addDown
// is exact and overlay distances equal plain Dijkstra distances bit for
// bit.
package graph

import (
	"context"
	"fmt"
	"math"

	"skysr/internal/pq"
)

// CHOverlay is the immutable contraction-hierarchy overlay of one graph.
// All slices are read-only after BuildCH (or a binary-dataset load) and
// may alias a memory-mapped file; consumers must not mutate them.
//
// The two CSR halves cover the search graph G∪S (original arcs plus
// shortcuts, parallel arcs reduced to their minimum weight):
//
//   - Up, indexed by u, holds the out-arcs u→v with Rank[v] > Rank[u];
//   - DownIn, indexed by v, holds the in-arcs u→v with Rank[u] > Rank[v],
//     storing the source u.
//
// This pair serves both directions: in the reversed graph the roles of Up
// and DownIn swap exactly (the reversal of an upward arc is a downward
// arc and vice versa), so forward and reverse queries need no additional
// storage.
type CHOverlay struct {
	NumV     int
	Directed bool
	// Rank[v] is v's contraction position (0 = contracted first); ranks
	// are a permutation of [0, NumV).
	Rank []int32
	// Order[i] is the vertex with rank i (the inverse permutation).
	Order []int32

	UpOff []int32 // len NumV+1
	UpTo  []int32
	UpW   []float64

	DownOff  []int32 // len NumV+1
	DownFrom []int32
	DownW    []float64

	// Shortcuts counts the inserted shortcut arcs (diagnostics only).
	Shortcuts int
}

// NumVertices returns the vertex count the overlay was built for.
func (ov *CHOverlay) NumVertices() int { return ov.NumV }

// NumShortcuts returns the number of shortcut arcs the build inserted.
func (ov *CHOverlay) NumShortcuts() int { return ov.Shortcuts }

// MemoryFootprintBytes estimates the overlay's resident size.
func (ov *CHOverlay) MemoryFootprintBytes() int64 {
	return int64(len(ov.Rank)+len(ov.Order)+len(ov.UpOff)+len(ov.UpTo)+len(ov.DownOff)+len(ov.DownFrom))*4 +
		int64(len(ov.UpW)+len(ov.DownW))*8
}

// Matches reports whether the overlay plausibly belongs to g: same vertex
// count and directedness. It cannot prove the weights match — binary
// datasets pair the two under one checksum instead.
func (ov *CHOverlay) Matches(g *Graph) bool {
	return ov != nil && ov.NumV == g.NumVertices() && ov.Directed == g.Directed()
}

// AddDown returns a+b rounded so the result never exceeds the exact real
// sum: the error term of the TwoSum transformation detects an upward
// rounding and steps the sum down one ulp. Sums that are exactly
// representable are returned exactly, so overlay distances over dyadic
// weights equal plain Dijkstra distances bit for bit.
func AddDown(a, b float64) float64 {
	s := a + b
	if math.IsInf(s, 1) {
		return s
	}
	bp := s - a
	if (a-(s-bp))+(b-bp) < 0 {
		s = math.Nextafter(s, math.Inf(-1))
	}
	return s
}

// chArc is one arc of the mutable core graph during contraction.
type chArc struct {
	to int32
	w  float64
}

// chBuilder holds the contraction state. The out/in mirrors hold only
// arcs between live (not yet contracted) vertices: contracting v removes
// the mirror entries from its neighbours' lists, freezing each arc in the
// lists of its lower-ranked endpoint — which is exactly the partition the
// overlay needs, so assemble reads it off directly.
type chBuilder struct {
	g          *Graph
	n          int
	out        [][]chArc // live out-arcs (originals + shortcuts)
	in         [][]chArc // live in-arcs (mirror of out)
	contracted []bool
	rank       []int32
	order      []int32
	deleted    []int32 // contracted-neighbours heuristic term
	shortcuts  int

	// Witness-search workspace (bounded local Dijkstra) and the
	// shortcut-target scratch list of one contraction simulation.
	// tstamp[x] == wgen marks x as a still-unwitnessed target with
	// candidate weight tcand[x].
	wdist   []float64
	wstamp  []uint32
	tcand   []float64
	tstamp  []uint32
	wgen    uint32
	wheap   *pq.Heap[chHeapItem]
	targets []chTarget
}

// chTarget is one prospective shortcut head during the simulation of a
// contraction: the u→v→target candidate weight to beat.
type chTarget struct {
	w    int32
	cand float64
}

type chHeapItem struct {
	v int32
	d float64
}

func chLess(a, b chHeapItem) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	return a.v < b.v
}

// The witness-search settle budgets. Contractions use a budget scaled by
// how many shortcut heads the search must try to witness: giving up too
// early is safe but inserts redundant shortcuts, and on dense late-stage
// cores those feed back into even denser cores, so the budget grows with
// the fan. Priority estimation uses a small flat budget — a conservative
// overestimate of the edge difference only perturbs the contraction
// order, never the overlay's correctness, and the estimate runs far more
// often than the contraction itself. A search that gives up errs toward
// inserting a shortcut the witness would have made redundant — always
// safe, never wrong.
const (
	witnessSettleLimit = 256
	witnessSettlePer   = 64
	prioritySettleCap  = 32
)

// chCancelStride is how many contractions happen between context checks.
const chCancelStride = 1024

// BuildCH builds the contraction-hierarchy overlay of g over its weight
// column. progress, when non-nil, is called periodically with the number
// of contracted vertices and the total. The build observes ctx and
// returns its error when cancelled; a nil ctx means context.Background().
func BuildCH(ctx context.Context, g *Graph, progress func(done, total int)) (*CHOverlay, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("graph: BuildCH on empty graph")
	}
	b := &chBuilder{
		g:          g,
		n:          n,
		out:        make([][]chArc, n),
		in:         make([][]chArc, n),
		contracted: make([]bool, n),
		rank:       make([]int32, n),
		order:      make([]int32, n),
		deleted:    make([]int32, n),
		wdist:      make([]float64, n),
		wstamp:     make([]uint32, n),
		tcand:      make([]float64, n),
		tstamp:     make([]uint32, n),
		wheap:      pq.NewHeap(chLess),
	}
	b.loadArcs()

	// Contract in lazy edge-difference order: pop the cheapest candidate,
	// recompute its priority if its neighbourhood changed since the cached
	// value (neighbour contractions or shortcut insertions), and reinsert
	// unless it is still no worse than the next candidate.
	type cand struct {
		v     int32
		prio  int32
		stamp int64
	}
	h := pq.NewHeap(func(a, b cand) bool {
		if a.prio != b.prio {
			return a.prio < b.prio
		}
		return a.v < b.v
	})
	for v := 0; v < n; v++ {
		h.Push(cand{v: int32(v), prio: b.priority(int32(v)), stamp: b.neighborhoodStamp(int32(v))})
	}
	next := int32(0)
	for h.Len() > 0 {
		c := h.Pop()
		if b.contracted[c.v] {
			continue
		}
		if c.stamp != b.neighborhoodStamp(c.v) {
			p := b.priority(c.v)
			if h.Len() > 0 && p > h.Peek().prio {
				h.Push(cand{v: c.v, prio: p, stamp: b.neighborhoodStamp(c.v)})
				continue
			}
		}
		b.contract(c.v)
		b.rank[c.v] = next
		b.order[next] = c.v
		next++
		if next%chCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if progress != nil {
				progress(int(next), n)
			}
		}
	}
	if progress != nil {
		progress(n, n)
	}
	return b.assemble(), nil
}

// loadArcs seeds the mutable core with the graph's arcs, reducing
// parallel arcs to their minimum weight.
func (b *chBuilder) loadArcs() {
	g := b.g
	for u := 0; u < b.n; u++ {
		ts, ws := g.Neighbors(VertexID(u))
		for i, t := range ts {
			if int32(t) == int32(u) {
				continue // self loops never lie on a shortest path
			}
			b.addArc(int32(u), int32(t), ws[i])
		}
	}
}

// addArc inserts or min-updates the arc u→v in both adjacency mirrors.
func (b *chBuilder) addArc(u, v int32, w float64) bool {
	for i := range b.out[u] {
		if b.out[u][i].to == v {
			if w < b.out[u][i].w {
				b.out[u][i].w = w
				for j := range b.in[v] {
					if b.in[v][j].to == u {
						b.in[v][j].w = w
						break
					}
				}
				return true
			}
			return false
		}
	}
	b.out[u] = append(b.out[u], chArc{to: v, w: w})
	b.in[v] = append(b.in[v], chArc{to: u, w: w})
	return true
}

// priority is the lazy ordering heuristic: simulated edge difference
// (shortcuts a contraction would insert minus arcs it removes) plus the
// contracted-neighbours term that spreads contractions evenly. The
// adjacency mirrors hold live vertices only, so the degrees read off
// directly.
func (b *chBuilder) priority(v int32) int32 {
	added := b.neededShortcuts(v, nil)
	return int32(added-len(b.in[v])-len(b.out[v])) + 2*b.deleted[v]
}

// neighborhoodStamp fingerprints v's live neighbourhood: a cached lazy
// priority stays valid while neither a neighbour contraction nor a
// shortcut insertion has touched v, which skips the witness simulation on
// the overwhelmingly common pop-unchanged-contract path.
func (b *chBuilder) neighborhoodStamp(v int32) int64 {
	return int64(b.deleted[v])<<32 | int64(len(b.out[v])+len(b.in[v]))
}

// neededShortcuts simulates contracting v: for every in-neighbour u it
// runs ONE bounded witness search covering all prospective shortcut heads
// u→v→w at once, and counts the pairs no witness path covers. When emit is
// non-nil it is called for each such pair (the contraction itself); with a
// nil emit the call only counts (the priority heuristic).
func (b *chBuilder) neededShortcuts(v int32, emit func(u, w int32, cand float64)) int {
	added := 0
	for _, ia := range b.in[v] {
		u := ia.to
		b.targets = b.targets[:0]
		maxBound := 0.0
		for _, oa := range b.out[v] {
			w := oa.to
			if w == u {
				continue // zero-length u→u path beats any positive shortcut
			}
			cand := AddDown(ia.w, oa.w)
			b.targets = append(b.targets, chTarget{w: w, cand: cand})
			if cand > maxBound {
				maxBound = cand
			}
		}
		if len(b.targets) == 0 {
			continue
		}
		limit := witnessSettleLimit + witnessSettlePer*len(b.targets)
		if emit == nil && limit > prioritySettleCap {
			limit = prioritySettleCap // estimating only: cheap and conservative
		}
		b.runWitness(u, v, maxBound, limit)
		for _, tg := range b.targets {
			if b.tstamp[tg.w] != b.wgen {
				continue // witnessed: a u→w path no longer than cand exists
			}
			added++
			if emit != nil {
				emit(u, tg.w, tg.cand)
			}
		}
	}
	return added
}

// runWitness runs one bounded Dijkstra from u in the core minus `skip`,
// trying to witness every target staged in b.targets: a target w is
// witnessed the moment any discovered path reaches it within tcand[w]
// (a tentative label is already a real path length, so settling is not
// required). Targets still stamped with the current generation afterwards
// found no witness. The search is bounded (weights and settle count), so
// a missed witness is conservative; that only ever inserts redundant
// shortcuts.
func (b *chBuilder) runWitness(u, skip int32, maxBound float64, limit int) {
	b.wgen++
	if b.wgen == 0 { // stamp wrap: invalidate everything once
		for i := range b.wstamp {
			b.wstamp[i] = 0
			b.tstamp[i] = 0
		}
		b.wgen = 1
	}
	remaining := 0
	for _, tg := range b.targets {
		if b.tstamp[tg.w] != b.wgen {
			b.tstamp[tg.w] = b.wgen
			b.tcand[tg.w] = tg.cand
			remaining++
		} else if tg.cand > b.tcand[tg.w] {
			// Parallel candidates to one head: the loosest bound decides.
			b.tcand[tg.w] = tg.cand
		}
	}
	h := b.wheap
	h.Reset()
	b.wdist[u] = 0
	b.wstamp[u] = b.wgen
	h.Push(chHeapItem{v: u, d: 0})
	settled := 0
	for h.Len() > 0 && settled < limit && remaining > 0 {
		it := h.Pop()
		if it.d > b.wdist[it.v] {
			continue
		}
		if it.d > maxBound {
			return
		}
		settled++
		for _, a := range b.out[it.v] {
			t := a.to
			if t == skip {
				continue
			}
			// Plain addition, deliberately: a label computed with + is ≥
			// the AddDown accumulation of the same path, so a witness
			// claimed here also holds under query arithmetic — the error
			// direction only ever misses witnesses (a redundant shortcut,
			// never a wrong one) and on exactly-representable sums the two
			// agree bit for bit.
			nd := it.d + a.w
			if nd > maxBound {
				continue
			}
			if b.wstamp[t] != b.wgen || nd < b.wdist[t] {
				b.wdist[t] = nd
				b.wstamp[t] = b.wgen
				if b.tstamp[t] == b.wgen && nd <= b.tcand[t] {
					b.tstamp[t] = 0 // witnessed
					remaining--
				}
				h.Push(chHeapItem{v: t, d: nd})
			}
		}
	}
}

// contract removes v from the core, inserting the shortcuts that keep
// distances among the remaining vertices intact, then freezes v's arcs by
// deleting their mirror entries from the neighbours' live lists. Each arc
// thereby survives in the lists of exactly its lower-ranked endpoint,
// which is the partition assemble emits.
func (b *chBuilder) contract(v int32) {
	b.neededShortcuts(v, func(u, w int32, cand float64) {
		if b.addArc(u, w, cand) {
			b.shortcuts++
		}
	})
	b.contracted[v] = true
	for _, a := range b.out[v] {
		removeMirror(&b.in[a.to], v)
		b.deleted[a.to]++
	}
	for _, a := range b.in[v] {
		removeMirror(&b.out[a.to], v)
		b.deleted[a.to]++
	}
}

// removeMirror swap-deletes the unique entry pointing at v.
func removeMirror(list *[]chArc, v int32) {
	s := *list
	for i := range s {
		if s[i].to == v {
			s[i] = s[len(s)-1]
			*list = s[:len(s)-1]
			return
		}
	}
}

// assemble emits the upward and downward CSR halves. Contraction froze
// every arc in the lists of its lower-ranked endpoint — out[u] holds
// exactly u's up-arcs and in[v] exactly v's down-in-arcs — so the halves
// read off without re-partitioning.
func (b *chBuilder) assemble() *CHOverlay {
	n := b.n
	ov := &CHOverlay{
		NumV:      n,
		Directed:  b.g.Directed(),
		Rank:      b.rank,
		Order:     b.order,
		Shortcuts: b.shortcuts,
		UpOff:     make([]int32, n+1),
		DownOff:   make([]int32, n+1),
	}
	for u := 0; u < n; u++ {
		ov.UpOff[u+1] = ov.UpOff[u] + int32(len(b.out[u]))
		ov.DownOff[u+1] = ov.DownOff[u] + int32(len(b.in[u]))
	}
	ov.UpTo = make([]int32, ov.UpOff[n])
	ov.UpW = make([]float64, ov.UpOff[n])
	ov.DownFrom = make([]int32, ov.DownOff[n])
	ov.DownW = make([]float64, ov.DownOff[n])
	for u := 0; u < n; u++ {
		i := ov.UpOff[u]
		for _, a := range b.out[u] {
			ov.UpTo[i] = a.to
			ov.UpW[i] = a.w
			i++
		}
		j := ov.DownOff[u]
		for _, a := range b.in[u] {
			ov.DownFrom[j] = a.to
			ov.DownW[j] = a.w
			j++
		}
	}
	return ov
}
