package graph

import (
	"math"
	"math/rand"
	"testing"

	"skysr/internal/geo"
)

// randomGraph builds a connected random graph with some PoIs.
func randomGraph(rng *rand.Rand, n int, directed bool) *Graph {
	b := NewBuilder(directed)
	for i := 0; i < n; i++ {
		p := geo.Point{Lon: rng.Float64(), Lat: rng.Float64()}
		if rng.Intn(3) == 0 {
			v := b.AddPoI(p, CategoryID(rng.Intn(4)))
			if rng.Intn(4) == 0 {
				b.AddCategory(v, CategoryID(4+rng.Intn(2)))
			}
		} else {
			b.AddVertex(p)
		}
	}
	for i := 1; i < n; i++ {
		b.AddEdge(VertexID(i), VertexID(rng.Intn(i)), 1+rng.Float64())
	}
	for i := 0; i < n; i++ {
		u, v := VertexID(rng.Intn(n)), VertexID(rng.Intn(n))
		if u != v {
			b.AddEdge(u, v, 1+rng.Float64())
		}
	}
	return b.Build()
}

// allArcs flattens a graph's adjacency into comparable (u, v, w) triples.
func allArcs(g *Graph) [][3]float64 {
	var out [][3]float64
	for u := VertexID(0); int(u) < g.NumVertices(); u++ {
		ts, ws := g.Neighbors(u)
		for i := range ts {
			out = append(out, [3]float64{float64(u), float64(ts[i]), ws[i]})
		}
	}
	return out
}

func TestApplyWeightOnlySharesStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, directed := range []bool{false, true} {
		g := randomGraph(rng, 30, directed)
		u := VertexID(5)
		ts, ws := g.Neighbors(u)
		if len(ts) == 0 {
			t.Fatal("vertex 5 has no arcs")
		}
		v, oldW := ts[0], ws[0]
		g2, err := g.Apply(Edits{SetWeights: []EdgeChange{{U: u, V: v, Weight: oldW + 7}}})
		if err != nil {
			t.Fatal(err)
		}
		if &g2.targets[0] != &g.targets[0] || &g2.offsets[0] != &g.offsets[0] {
			t.Error("weight-only apply should share CSR structure arrays")
		}
		if w, _ := g.EdgeWeight(u, v); w != oldW {
			t.Errorf("original graph mutated: weight %v, want %v", w, oldW)
		}
		if w, _ := g2.EdgeWeight(u, v); w != oldW+7 {
			t.Errorf("new weight = %v, want %v", w, oldW+7)
		}
		if !directed {
			if w, _ := g2.EdgeWeight(v, u); w != oldW+7 {
				t.Errorf("reverse arc weight = %v, want %v (undirected)", w, oldW+7)
			}
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Errorf("edge count changed: %d != %d", g2.NumEdges(), g.NumEdges())
		}
	}
}

func TestApplyStructuralMatchesBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, directed := range []bool{false, true} {
		g := randomGraph(rng, 25, directed)
		ts, _ := g.Neighbors(3)
		if len(ts) == 0 {
			t.Fatal("vertex 3 has no arcs")
		}
		rm := ts[0]
		edits := Edits{
			RemoveEdges: []EdgeChange{{U: 3, V: rm}},
			AddEdges:    []EdgeChange{{U: 0, V: 24, Weight: 9.25}},
		}
		g2, err := g.Apply(edits)
		if err != nil {
			t.Fatal(err)
		}
		if w, ok := g2.EdgeWeight(0, 24); !ok || w > 9.25 {
			t.Errorf("added edge weight = %v ok=%v, want <= 9.25 present", w, ok)
		}
		if _, ok := g2.EdgeWeight(3, rm); ok {
			t.Errorf("removed edge (3,%d) still present", rm)
		}

		// The rebuilt graph must be arc-for-arc identical to one built from
		// scratch in canonical order with the same logical edges.
		b := NewBuilder(directed)
		for i := 0; i < g.NumVertices(); i++ {
			b.AddVertex(g.Point(VertexID(i)))
		}
		for u := VertexID(0); int(u) < g.NumVertices(); u++ {
			nts, nws := g.Neighbors(u)
			for i, v := range nts {
				if !directed && u > v {
					continue
				}
				if u == 3 && v == rm || (!directed && u == rm && v == 3) {
					continue
				}
				b.AddEdge(u, v, nws[i])
			}
		}
		b.AddEdge(0, 24, 9.25)
		want := b.Build()
		got, exp := allArcs(g2), allArcs(want)
		if len(got) != len(exp) {
			t.Fatalf("arc count %d != %d", len(got), len(exp))
		}
		for i := range got {
			if got[i] != exp[i] {
				t.Fatalf("arc %d: %v != %v", i, got[i], exp[i])
			}
		}
	}
}

func TestApplyCategories(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 20, false)
	var road, poi VertexID = -1, -1
	for v := VertexID(0); int(v) < g.NumVertices(); v++ {
		if g.IsPoI(v) && poi < 0 {
			poi = v
		}
		if !g.IsPoI(v) && road < 0 {
			road = v
		}
	}
	g2, err := g.Apply(Edits{SetCategories: []CategoryChange{
		{V: road, Categories: []CategoryID{2, 5}}, // road → multi-category PoI
		{V: poi, Categories: nil},                 // PoI → road
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !g2.IsPoI(road) || g2.PrimaryCategory(road) != 2 || len(g2.Categories(road)) != 2 {
		t.Errorf("vertex %d: cats = %v, want [2 5]", road, g2.Categories(road))
	}
	if g2.IsPoI(poi) {
		t.Errorf("vertex %d still a PoI after removal", poi)
	}
	if g2.NumPoIs() != g.NumPoIs() {
		t.Errorf("PoI count = %d, want %d", g2.NumPoIs(), g.NumPoIs())
	}
	if !g.IsPoI(poi) || g.IsPoI(road) {
		t.Error("original graph category state mutated")
	}
}

func TestApplyValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 10, false)
	ts, _ := g.Neighbors(1)
	v := ts[0]
	cases := []struct {
		name  string
		edits Edits
	}{
		{"unknown vertex", Edits{SetWeights: []EdgeChange{{U: 1, V: 99, Weight: 1}}}},
		{"missing edge", Edits{RemoveEdges: []EdgeChange{{U: 1, V: findNonNeighbor(g, 1)}}}},
		{"negative weight", Edits{SetWeights: []EdgeChange{{U: 1, V: v, Weight: -1}}}},
		{"nan weight", Edits{AddEdges: []EdgeChange{{U: 0, V: 9, Weight: math.NaN()}}}},
		{"self loop", Edits{AddEdges: []EdgeChange{{U: 3, V: 3, Weight: 1}}}},
		{"conflicting ops", Edits{
			SetWeights:  []EdgeChange{{U: 1, V: v, Weight: 1}},
			RemoveEdges: []EdgeChange{{U: v, V: 1}},
		}},
		{"no-category entry", Edits{SetCategories: []CategoryChange{{V: 1, Categories: []CategoryID{NoCategory}}}}},
		{"duplicate category vertex", Edits{SetCategories: []CategoryChange{
			{V: 1, Categories: []CategoryID{1}}, {V: 1, Categories: nil},
		}}},
	}
	for _, tc := range cases {
		if _, err := g.Apply(tc.edits); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func findNonNeighbor(g *Graph, u VertexID) VertexID {
	for v := VertexID(0); int(v) < g.NumVertices(); v++ {
		if v == u {
			continue
		}
		if _, ok := g.EdgeWeight(u, v); !ok {
			return v
		}
	}
	return -1
}
