package graph

import (
	"context"
	"math"
	"testing"

	"skysr/internal/geo"
)

func buildLine(n int, directed bool) *Graph {
	b := NewBuilder(directed)
	for i := 0; i < n; i++ {
		b.AddVertex(geo.Point{Lon: float64(i), Lat: 0})
	}
	for i := 0; i < n-1; i++ {
		b.AddEdge(VertexID(i), VertexID(i+1), 1)
	}
	return b.Build()
}

// TestCHOverlayInvariants checks the structural contract every consumer
// relies on: ranks are a permutation with Order its inverse, every upward
// arc strictly climbs ranks, every downward in-arc strictly descends into
// its key, and weights are positive and finite.
func TestCHOverlayInvariants(t *testing.T) {
	g := buildLine(64, false)
	ov, err := BuildCH(context.Background(), g, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := ov.NumV
	if n != g.NumVertices() {
		t.Fatalf("NumV %d != %d", n, g.NumVertices())
	}
	seen := make([]bool, n)
	for v := 0; v < n; v++ {
		r := ov.Rank[v]
		if r < 0 || int(r) >= n || seen[r] {
			t.Fatalf("rank of %d is %d: not a permutation", v, r)
		}
		seen[r] = true
		if ov.Order[r] != int32(v) {
			t.Fatalf("Order[%d] = %d, want %d", r, ov.Order[r], v)
		}
	}
	if int(ov.UpOff[n]) != len(ov.UpTo) || len(ov.UpTo) != len(ov.UpW) {
		t.Fatalf("up CSR inconsistent: off end %d, to %d, w %d", ov.UpOff[n], len(ov.UpTo), len(ov.UpW))
	}
	if int(ov.DownOff[n]) != len(ov.DownFrom) || len(ov.DownFrom) != len(ov.DownW) {
		t.Fatalf("down CSR inconsistent")
	}
	for u := 0; u < n; u++ {
		for i := ov.UpOff[u]; i < ov.UpOff[u+1]; i++ {
			v := ov.UpTo[i]
			if ov.Rank[v] <= ov.Rank[u] {
				t.Fatalf("up arc %d->%d does not climb (ranks %d, %d)", u, v, ov.Rank[u], ov.Rank[v])
			}
			if w := ov.UpW[i]; !(w > 0) || math.IsInf(w, 1) {
				t.Fatalf("up arc %d->%d weight %v", u, v, w)
			}
		}
		for i := ov.DownOff[u]; i < ov.DownOff[u+1]; i++ {
			f := ov.DownFrom[i]
			if ov.Rank[f] <= ov.Rank[u] {
				t.Fatalf("down in-arc %d->%d does not descend (ranks %d, %d)", f, u, ov.Rank[f], ov.Rank[u])
			}
			if w := ov.DownW[i]; !(w > 0) || math.IsInf(w, 1) {
				t.Fatalf("down arc %d->%d weight %v", f, u, w)
			}
		}
	}
	if !ov.Matches(g) {
		t.Fatal("overlay does not match its own graph")
	}
}

// TestCHLineShortcuts: contracting a path graph in any order must insert
// shortcuts that keep both endpoints connected through the hierarchy, and
// total arcs stay O(n log n) — sanity, not a tight bound.
func TestCHLineShortcuts(t *testing.T) {
	g := buildLine(128, true)
	ov, err := BuildCH(context.Background(), g, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := len(ov.UpTo) + len(ov.DownFrom)
	if total < g.NumVertices()-1 {
		t.Fatalf("overlay lost arcs: %d", total)
	}
	if total > 20*g.NumVertices() {
		t.Fatalf("overlay exploded: %d arcs for %d vertices", total, g.NumVertices())
	}
}

func TestBuildCHCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Needs more than one cancellation stride of vertices to observe ctx.
	g := buildLine(3000, false)
	if _, err := BuildCH(ctx, g, nil); err == nil {
		t.Fatal("BuildCH ignored cancelled context")
	}
}

func TestBuildCHEmpty(t *testing.T) {
	b := NewBuilder(false)
	if _, err := BuildCH(context.Background(), b.Build(), nil); err == nil {
		t.Fatal("BuildCH on empty graph should error")
	}
}

func TestAddDown(t *testing.T) {
	// Dyadic sums are exact.
	if got := AddDown(0.5, 0.25); got != 0.75 {
		t.Fatalf("AddDown(0.5, 0.25) = %v", got)
	}
	// Never above the float64 rounded-to-nearest sum.
	cases := [][2]float64{{0.1, 0.2}, {1e16, 1}, {math.Pi, math.E}, {1.0000000000000002, 1e-18}}
	for _, c := range cases {
		s := AddDown(c[0], c[1])
		if s > c[0]+c[1] {
			t.Fatalf("AddDown(%v, %v) = %v above rounded sum %v", c[0], c[1], s, c[0]+c[1])
		}
		if s < math.Nextafter(c[0]+c[1], math.Inf(-1)) {
			t.Fatalf("AddDown(%v, %v) = %v more than one ulp low", c[0], c[1], s)
		}
	}
	if !math.IsInf(AddDown(math.Inf(1), 1), 1) {
		t.Fatal("AddDown(+Inf, 1) should stay +Inf")
	}
}
