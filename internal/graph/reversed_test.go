package graph

import (
	"math/rand"
	"testing"

	"skysr/internal/geo"
)

func TestReversedUndirectedIsSelf(t *testing.T) {
	b := NewBuilder(false)
	u := b.AddVertex(geo.Point{})
	v := b.AddVertex(geo.Point{Lon: 1})
	b.AddEdge(u, v, 1)
	g := b.Build()
	if g.Reversed() != g {
		t.Error("undirected Reversed should return the receiver")
	}
}

func TestReversedFlipsArcs(t *testing.T) {
	b := NewBuilder(true)
	for i := 0; i < 4; i++ {
		b.AddVertex(geo.Point{Lon: float64(i)})
	}
	b.AddEdge(0, 1, 1.5)
	b.AddEdge(1, 2, 2.5)
	b.AddEdge(2, 0, 3.5)
	b.AddEdge(1, 3, 4.5)
	g := b.Build()
	r := g.Reversed()

	if !r.Directed() {
		t.Fatal("reversed graph must stay directed")
	}
	if r.NumVertices() != g.NumVertices() || r.NumEdges() != g.NumEdges() {
		t.Fatal("sizes changed")
	}
	// Every arc u->v in g must exist as v->u in r with the same weight.
	for u := VertexID(0); int(u) < g.NumVertices(); u++ {
		ts, ws := g.Neighbors(u)
		for i, v := range ts {
			w, ok := r.EdgeWeight(v, u)
			if !ok || w != ws[i] {
				t.Errorf("arc %d->%d (%v) missing or wrong in reverse: %v %v", u, v, ws[i], w, ok)
			}
		}
	}
	// And arc counts must match exactly (no extras).
	fwd, rev := 0, 0
	for u := VertexID(0); int(u) < g.NumVertices(); u++ {
		ts, _ := g.Neighbors(u)
		fwd += len(ts)
		rs, _ := r.Neighbors(u)
		rev += len(rs)
	}
	if fwd != rev {
		t.Errorf("arc counts differ: %d vs %d", fwd, rev)
	}
}

func TestReversedPreservesPoIs(t *testing.T) {
	b := NewBuilder(true)
	p := b.AddPoI(geo.Point{}, 3)
	v := b.AddVertex(geo.Point{Lon: 1})
	b.AddEdge(p, v, 1)
	b.AddCategory(p, 7)
	g := b.Build()
	r := g.Reversed()
	if !r.IsPoI(p) || r.PrimaryCategory(p) != 3 {
		t.Error("PoI data lost in reversal")
	}
	cats := r.Categories(p)
	if len(cats) != 2 || cats[1] != 7 {
		t.Errorf("extra categories lost: %v", cats)
	}
	if len(r.PoIVertices()) != 1 {
		t.Error("PoI list lost")
	}
}

func TestReversedTwiceEqualsOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	b := NewBuilder(true)
	const n = 20
	for i := 0; i < n; i++ {
		b.AddVertex(geo.Point{Lon: rng.Float64()})
	}
	for e := 0; e < 50; e++ {
		u, v := VertexID(rng.Intn(n)), VertexID(rng.Intn(n))
		if u != v {
			b.AddEdge(u, v, rng.Float64()*10)
		}
	}
	g := b.Build()
	rr := g.Reversed().Reversed()
	for u := VertexID(0); u < n; u++ {
		ts, ws := g.Neighbors(u)
		rts, rws := rr.Neighbors(u)
		if len(ts) != len(rts) {
			t.Fatalf("degree of %d changed: %d vs %d", u, len(ts), len(rts))
		}
		// Compare as multisets.
		seen := map[[2]float64]int{}
		for i := range ts {
			seen[[2]float64{float64(ts[i]), ws[i]}]++
		}
		for i := range rts {
			seen[[2]float64{float64(rts[i]), rws[i]}]--
		}
		for k, c := range seen {
			if c != 0 {
				t.Fatalf("arc multiset differs at %d: %v", u, k)
			}
		}
	}
}
