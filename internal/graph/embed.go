package graph

import (
	"errors"

	"skysr/internal/geo"
	"skysr/internal/spatial"
)

// ErrNoEdges is returned when embedding a PoI into a graph without edges.
var ErrNoEdges = errors.New("graph: cannot embed PoI, builder has no edges")

// Embedder places PoI vertices on the closest road edge, the preprocessing
// step the paper performs for the Tokyo and NYC datasets (§7.1, "Each PoI
// is embedded on the closest edge in the same way as [10]").
//
// Embedding a PoI splits the closest edge (u, v) at the projection point p
// into (u, p) and (p, v), distributing the original weight proportionally.
// The split edges are tombstoned in the builder and the two replacement
// segments are added to the spatial index, so subsequent embeds see the
// refined network.
type Embedder struct {
	b    *Builder
	grid *spatial.Grid
}

// NewEmbedder indexes all live edges of b and returns an Embedder. cells
// controls spatial-index resolution (e.g. 128 for city-scale networks).
func NewEmbedder(b *Builder, cells int) (*Embedder, error) {
	if b.NumEdges() == 0 {
		return nil, ErrNoEdges
	}
	var bounds geo.Rect
	for v := VertexID(0); int(v) < b.NumVertices(); v++ {
		bounds.Extend(b.Point(v))
	}
	grid := spatial.NewGrid(bounds, cells)
	for idx := range b.edges {
		u, v, _, live := b.Edge(idx)
		if live {
			grid.InsertSegment(int32(idx), b.Point(u), b.Point(v))
		}
	}
	return &Embedder{b: b, grid: grid}, nil
}

// Embed adds a PoI with the given category at the network position closest
// to p and returns the new PoI vertex id.
func (e *Embedder) Embed(p geo.Point, c CategoryID) (VertexID, error) {
	alive := func(id int32) bool {
		_, _, _, live := e.b.Edge(int(id))
		return live
	}
	edgeIdx, proj, t, _, ok := e.grid.NearestSegmentFiltered(p, alive)
	if !ok {
		return NoVertex, ErrNoEdges
	}
	u, v, w, _ := e.b.Edge(int(edgeIdx))
	poi := e.b.AddPoI(proj, c)
	e.b.RemoveEdge(int(edgeIdx))
	left := e.b.AddEdge(u, poi, w*t)
	right := e.b.AddEdge(poi, v, w*(1-t))
	e.grid.InsertSegment(int32(left), e.b.Point(u), proj)
	e.grid.InsertSegment(int32(right), proj, e.b.Point(v))
	return poi, nil
}
