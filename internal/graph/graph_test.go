package graph

import (
	"math"
	"testing"

	"skysr/internal/geo"
)

// line builds a path graph 0-1-2-...-(n-1) with unit weights.
func line(t *testing.T, n int, directed bool) *Graph {
	t.Helper()
	b := NewBuilder(directed)
	for i := 0; i < n; i++ {
		b.AddVertex(geo.Point{Lon: float64(i), Lat: 0})
	}
	for i := 0; i < n-1; i++ {
		b.AddEdge(VertexID(i), VertexID(i+1), 1)
	}
	return b.Build()
}

func TestBuildUndirected(t *testing.T) {
	g := line(t, 4, false)
	if g.Directed() {
		t.Error("expected undirected")
	}
	if g.NumVertices() != 4 || g.NumEdges() != 3 {
		t.Fatalf("|V|=%d |E|=%d, want 4, 3", g.NumVertices(), g.NumEdges())
	}
	// Middle vertices see both neighbors.
	ts, ws := g.Neighbors(1)
	if len(ts) != 2 {
		t.Fatalf("degree(1) = %d, want 2", len(ts))
	}
	seen := map[VertexID]float64{}
	for i, v := range ts {
		seen[v] = ws[i]
	}
	if seen[0] != 1 || seen[2] != 1 {
		t.Errorf("neighbors of 1 = %v", seen)
	}
	if g.Degree(0) != 1 || g.Degree(3) != 1 {
		t.Error("endpoint degrees wrong")
	}
}

func TestBuildDirected(t *testing.T) {
	b := NewBuilder(true)
	for i := 0; i < 3; i++ {
		b.AddVertex(geo.Point{Lon: float64(i)})
	}
	b.AddEdge(0, 1, 2.5)
	b.AddEdge(1, 2, 1.5)
	g := b.Build()
	if !g.Directed() {
		t.Error("expected directed")
	}
	ts, _ := g.Neighbors(1)
	if len(ts) != 1 || ts[0] != 2 {
		t.Errorf("directed neighbors of 1 = %v, want [2]", ts)
	}
	ts, _ = g.Neighbors(2)
	if len(ts) != 0 {
		t.Errorf("directed neighbors of 2 = %v, want []", ts)
	}
	if w, ok := g.EdgeWeight(0, 1); !ok || w != 2.5 {
		t.Errorf("EdgeWeight(0,1) = %v,%v", w, ok)
	}
	if _, ok := g.EdgeWeight(1, 0); ok {
		t.Error("reverse arc should not exist in a directed graph")
	}
}

func TestPoIBookkeeping(t *testing.T) {
	b := NewBuilder(false)
	v0 := b.AddVertex(geo.Point{})
	p1 := b.AddPoI(geo.Point{Lon: 1}, 7)
	v2 := b.AddVertex(geo.Point{Lon: 2})
	p3 := b.AddPoI(geo.Point{Lon: 3}, 9)
	b.AddEdge(v0, p1, 1)
	b.AddEdge(p1, v2, 1)
	b.AddEdge(v2, p3, 1)
	g := b.Build()

	if g.NumPoIs() != 2 || g.NumRoadVertices() != 2 {
		t.Fatalf("pois=%d roads=%d, want 2, 2", g.NumPoIs(), g.NumRoadVertices())
	}
	if !g.IsPoI(p1) || g.IsPoI(v0) {
		t.Error("IsPoI wrong")
	}
	if g.PrimaryCategory(p1) != 7 || g.PrimaryCategory(v2) != NoCategory {
		t.Error("PrimaryCategory wrong")
	}
	want := []VertexID{p1, p3}
	got := g.PoIVertices()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("PoIVertices = %v, want %v", got, want)
	}
	if cats := g.Categories(p1); len(cats) != 1 || cats[0] != 7 {
		t.Errorf("Categories(p1) = %v, want [7]", cats)
	}
	if cats := g.Categories(v0); cats != nil {
		t.Errorf("Categories(road) = %v, want nil", cats)
	}
}

func TestMultiCategoryPoI(t *testing.T) {
	b := NewBuilder(false)
	p := b.AddPoI(geo.Point{}, 3)
	v := b.AddVertex(geo.Point{Lon: 1})
	b.AddEdge(p, v, 1)
	b.AddCategory(p, 5)
	b.AddCategory(p, 5) // duplicate ignored
	b.AddCategory(p, 3) // primary duplicate ignored
	g := b.Build()
	cats := g.Categories(p)
	if len(cats) != 2 || cats[0] != 3 || cats[1] != 5 {
		t.Errorf("Categories = %v, want [3 5]", cats)
	}
	if g.PrimaryCategory(p) != 3 {
		t.Errorf("PrimaryCategory = %d, want 3", g.PrimaryCategory(p))
	}
}

func TestAddCategoryOnRoadVertexPanics(t *testing.T) {
	b := NewBuilder(false)
	v := b.AddVertex(geo.Point{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	b.AddCategory(v, 1)
}

func TestInvalidEdgePanics(t *testing.T) {
	cases := map[string]func(b *Builder, u, v VertexID){
		"negative weight": func(b *Builder, u, v VertexID) { b.AddEdge(u, v, -1) },
		"nan weight":      func(b *Builder, u, v VertexID) { b.AddEdge(u, v, math.NaN()) },
		"self loop":       func(b *Builder, u, v VertexID) { b.AddEdge(u, u, 1) },
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			b := NewBuilder(false)
			u := b.AddVertex(geo.Point{})
			v := b.AddVertex(geo.Point{Lon: 1})
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn(b, u, v)
		})
	}
}

func TestRemoveEdge(t *testing.T) {
	b := NewBuilder(false)
	u := b.AddVertex(geo.Point{})
	v := b.AddVertex(geo.Point{Lon: 1})
	w := b.AddVertex(geo.Point{Lon: 2})
	e0 := b.AddEdge(u, v, 1)
	b.AddEdge(v, w, 1)
	b.RemoveEdge(e0)
	b.RemoveEdge(e0) // idempotent
	if b.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", b.NumEdges())
	}
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("built NumEdges = %d, want 1", g.NumEdges())
	}
	if _, ok := g.EdgeWeight(u, v); ok {
		t.Error("removed edge still present")
	}
	if _, ok := g.EdgeWeight(v, w); !ok {
		t.Error("surviving edge missing")
	}
}

func TestConnectivity(t *testing.T) {
	g := line(t, 5, false)
	if !g.IsConnected() {
		t.Error("line should be connected")
	}
	// Two components: a triangle and an edge.
	b := NewBuilder(false)
	for i := 0; i < 5; i++ {
		b.AddVertex(geo.Point{Lon: float64(i)})
	}
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 0, 1)
	b.AddEdge(3, 4, 1)
	g = b.Build()
	if g.IsConnected() {
		t.Error("two components should not be connected")
	}
	comp := g.LargestComponent()
	if len(comp) != 3 {
		t.Fatalf("largest component size = %d, want 3", len(comp))
	}
	for i, want := range []VertexID{0, 1, 2} {
		if comp[i] != want {
			t.Errorf("component[%d] = %d, want %d", i, comp[i], want)
		}
	}
}

func TestComponentOfDirectedIsWeak(t *testing.T) {
	b := NewBuilder(true)
	for i := 0; i < 3; i++ {
		b.AddVertex(geo.Point{Lon: float64(i)})
	}
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 1, 1) // only reachable from 1 by reverse arc
	g := b.Build()
	comp := g.ComponentOf(0)
	for v := VertexID(0); v < 3; v++ {
		if !comp[v] {
			t.Errorf("vertex %d should be in the weak component of 0", v)
		}
	}
}

func TestBounds(t *testing.T) {
	g := line(t, 3, false)
	r := g.Bounds()
	if r.MinLon != 0 || r.MaxLon != 2 || r.MinLat != 0 || r.MaxLat != 0 {
		t.Errorf("bounds = %+v", r)
	}
}

func TestMemoryFootprintPositive(t *testing.T) {
	g := line(t, 10, false)
	if g.MemoryFootprintBytes() <= 0 {
		t.Error("footprint should be positive")
	}
}

func TestEmbedPoISplitsEdge(t *testing.T) {
	b := NewBuilder(false)
	u := b.AddVertex(geo.Point{Lon: 0, Lat: 0})
	v := b.AddVertex(geo.Point{Lon: 10, Lat: 0})
	b.AddEdge(u, v, 10)
	em, err := NewEmbedder(b, 16)
	if err != nil {
		t.Fatal(err)
	}
	poi, err := em.Embed(geo.Point{Lon: 3, Lat: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if !g.IsPoI(poi) || g.PrimaryCategory(poi) != 1 {
		t.Fatal("embedded vertex is not the expected PoI")
	}
	pt := g.Point(poi)
	if math.Abs(pt.Lon-3) > 1e-9 || math.Abs(pt.Lat) > 1e-9 {
		t.Errorf("PoI embedded at %v, want {3 0}", pt)
	}
	if w, ok := g.EdgeWeight(u, poi); !ok || math.Abs(w-3) > 1e-9 {
		t.Errorf("left split weight = %v, %v", w, ok)
	}
	if w, ok := g.EdgeWeight(poi, v); !ok || math.Abs(w-7) > 1e-9 {
		t.Errorf("right split weight = %v, %v", w, ok)
	}
	if _, ok := g.EdgeWeight(u, v); ok {
		t.Error("original edge should have been split away")
	}
	if !g.IsConnected() {
		t.Error("embedding must preserve connectivity")
	}
}

func TestEmbedMultiplePoIsOnSameEdge(t *testing.T) {
	b := NewBuilder(false)
	u := b.AddVertex(geo.Point{Lon: 0, Lat: 0})
	v := b.AddVertex(geo.Point{Lon: 10, Lat: 0})
	b.AddEdge(u, v, 10)
	em, err := NewEmbedder(b, 16)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := em.Embed(geo.Point{Lon: 2, Lat: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := em.Embed(geo.Point{Lon: 7, Lat: -1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if !g.IsConnected() {
		t.Fatal("graph must stay connected after repeated embedding")
	}
	// Total network length along the original edge must be preserved.
	total := 0.0
	for _, pair := range [][2]VertexID{{u, p1}, {p1, p2}, {p2, v}} {
		w, ok := g.EdgeWeight(pair[0], pair[1])
		if !ok {
			t.Fatalf("missing edge %v", pair)
		}
		total += w
	}
	if math.Abs(total-10) > 1e-9 {
		t.Errorf("total split length = %v, want 10", total)
	}
}

func TestEmbedIntoEmptyBuilder(t *testing.T) {
	b := NewBuilder(false)
	b.AddVertex(geo.Point{})
	if _, err := NewEmbedder(b, 4); err == nil {
		t.Error("NewEmbedder on edge-less builder should fail")
	}
}

func TestBuilderReusableAfterBuild(t *testing.T) {
	b := NewBuilder(false)
	u := b.AddVertex(geo.Point{})
	v := b.AddVertex(geo.Point{Lon: 1})
	b.AddEdge(u, v, 1)
	g1 := b.Build()
	w := b.AddVertex(geo.Point{Lon: 2})
	b.AddEdge(v, w, 1)
	g2 := b.Build()
	if g1.NumVertices() != 2 || g1.NumEdges() != 1 {
		t.Error("first build mutated by later builder use")
	}
	if g2.NumVertices() != 3 || g2.NumEdges() != 2 {
		t.Error("second build missing additions")
	}
}
