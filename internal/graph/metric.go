package graph

// This file implements the cost-metric layer: the seam that decouples
// "what does traversing an arc cost" from the search algorithms. Two
// metrics exist — Static (the classic scalar edge weight) and
// TimeDependent (piecewise-linear FIFO travel-time profiles, the setting
// of Costa et al., "Optimal Time-dependent Sequenced Route Queries in
// Road Networks") — and both expose the same contract:
//
//   - Cost(arc, t) is the cost of traversing the arc when its tail is
//     left at absolute time t;
//   - LowerBound(arc) is the minimum of Cost over the whole time domain.
//
// The graph's CSR weights array always holds the per-arc lower bound, so
// every distance computed from the raw weights — index rows, the §5.3.3
// hop minima, Algorithm 4 radii, destination tables — is automatically a
// distance in the metric's lower-bound graph and therefore an admissible
// lower bound of the true time-dependent cost. That single invariant is
// what lets the paper's pruning survive the generalization unchanged.
//
// Profiles are FIFO: departing later never arrives earlier. For a
// piecewise-linear profile that is exactly "every segment has slope
// ≥ −1" (including the wrap-around segment), which Validate enforces.
// Under FIFO, label-setting Dijkstra with cost-at-arrival evaluation
// remains exact (Dreyfus 1969), prefixes of shortest paths stay
// shortest, and the Lemma 5.5 substitution argument carries over — see
// ARCHITECTURE.md, "Cost metrics".

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// DefaultPeriod is the time-domain length applied when a dataset attaches
// profiles without declaring a period: one day in seconds.
const DefaultPeriod = 86400.0

// ErrBadProfile is the typed error wrapping every profile validation
// failure: non-FIFO slopes, unsorted or out-of-range breakpoints,
// negative or non-finite costs. Dataset loading and live updates both
// reject invalid profiles with it.
var ErrBadProfile = errors.New("graph: invalid time profile")

// Profile is a periodic piecewise-linear travel-time function. Times are
// breakpoint offsets in [0, period), strictly ascending; Costs are the
// arc costs at those offsets. Between breakpoints the cost interpolates
// linearly; between the last breakpoint and the first-plus-period it
// wraps around. A single breakpoint means a constant cost.
type Profile struct {
	Times []float64
	Costs []float64
}

// ConstantProfile returns the profile that costs w at every departure
// time. Attaching it to an edge is semantically identical to a static
// edge of weight w.
func ConstantProfile(w float64) Profile {
	return Profile{Times: []float64{0}, Costs: []float64{w}}
}

// Constant reports whether the profile's cost never varies.
func (p Profile) Constant() bool {
	for _, c := range p.Costs[1:] {
		if c != p.Costs[0] {
			return false
		}
	}
	return true
}

// Min returns the minimum cost over the whole time domain. A piecewise-
// linear function attains its minimum at a breakpoint.
func (p Profile) Min() float64 {
	min := math.Inf(1)
	for _, c := range p.Costs {
		if c < min {
			min = c
		}
	}
	return min
}

// Validate checks the profile against the FIFO travel-time contract for
// the given period. All failures wrap ErrBadProfile.
func (p Profile) Validate(period float64) error {
	if period <= 0 || math.IsNaN(period) || math.IsInf(period, 0) {
		return fmt.Errorf("%w: period %v is not positive and finite", ErrBadProfile, period)
	}
	n := len(p.Times)
	if n == 0 {
		return fmt.Errorf("%w: no breakpoints", ErrBadProfile)
	}
	if len(p.Costs) != n {
		return fmt.Errorf("%w: %d times for %d costs", ErrBadProfile, n, len(p.Costs))
	}
	for i, t := range p.Times {
		if math.IsNaN(t) || t < 0 || t >= period {
			return fmt.Errorf("%w: breakpoint time %v outside [0, %v)", ErrBadProfile, t, period)
		}
		if i > 0 && t <= p.Times[i-1] {
			return fmt.Errorf("%w: breakpoint times not strictly ascending (%v after %v)", ErrBadProfile, t, p.Times[i-1])
		}
	}
	for _, c := range p.Costs {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("%w: cost %v is not finite and non-negative", ErrBadProfile, c)
		}
	}
	// FIFO: slope ≥ −1 on every segment, wrap segment included. A slope
	// below −1 would let a later departure overtake an earlier one.
	for i := 0; i < n; i++ {
		t0, c0 := p.Times[i], p.Costs[i]
		var t1, c1 float64
		if i+1 < n {
			t1, c1 = p.Times[i+1], p.Costs[i+1]
		} else {
			t1, c1 = p.Times[0]+period, p.Costs[0]
		}
		if t1 == t0 {
			continue // single breakpoint wrapping onto itself (constant)
		}
		if (c1-c0)/(t1-t0) < -1 {
			return fmt.Errorf("%w: segment [%v, %v] has slope %v < -1 (non-FIFO)",
				ErrBadProfile, t0, t1, (c1-c0)/(t1-t0))
		}
	}
	return nil
}

// Eval returns the cost at departure time t (any real; the profile is
// periodic with the given period).
func (p Profile) Eval(t, period float64) float64 {
	n := len(p.Times)
	if n == 1 {
		return p.Costs[0]
	}
	t = math.Mod(t, period)
	if t < 0 {
		t += period
	}
	// i is the last breakpoint with Times[i] <= t; t before the first
	// breakpoint falls on the wrap segment from the last one.
	i := sort.SearchFloat64s(p.Times, t)
	if i < n && p.Times[i] == t {
		return p.Costs[i]
	}
	i--
	var t0, c0, t1, c1 float64
	if i < 0 {
		t0, c0 = p.Times[n-1]-period, p.Costs[n-1]
		t1, c1 = p.Times[0], p.Costs[0]
	} else if i == n-1 {
		t0, c0 = p.Times[n-1], p.Costs[n-1]
		t1, c1 = p.Times[0]+period, p.Costs[0]
	} else {
		t0, c0 = p.Times[i], p.Costs[i]
		t1, c1 = p.Times[i+1], p.Costs[i+1]
	}
	return c0 + (c1-c0)*(t-t0)/(t1-t0)
}

// clone returns a deep copy of the profile.
func (p Profile) clone() Profile {
	return Profile{
		Times: append([]float64(nil), p.Times...),
		Costs: append([]float64(nil), p.Costs...),
	}
}

// TimeTable holds the time-dependent state of a graph: one shared period
// and, per CSR arc, an optional profile. Arcs without a profile keep
// their static weight at every departure time. A TimeTable is immutable
// once attached to a built graph.
type TimeTable struct {
	period   float64
	arcProf  []int32 // per arc: index into profiles, -1 for static arcs
	profiles []Profile

	// evalProf is the evaluation table finalize derives: arcs whose
	// profile never varies are resolved to -1 (their weight column
	// already equals the constant cost), so constant profiles cost
	// nothing at query time. varying records whether any profile
	// actually varies — when none does, the whole graph evaluates (and
	// caches, and shares) exactly like a static one.
	evalProf []int32
	varying  bool
}

// finalize derives the evaluation table from the attached profiles. It
// must be called whenever arcProf/profiles change (graph build, cost
// patching).
func (tt *TimeTable) finalize() {
	tt.evalProf = make([]int32, len(tt.arcProf))
	tt.varying = false
	for i, pid := range tt.arcProf {
		if pid >= 0 && !tt.profiles[pid].Constant() {
			tt.evalProf[i] = pid
			tt.varying = true
		} else {
			tt.evalProf[i] = -1
		}
	}
}

// Period returns the time-domain length profiles repeat over.
func (tt *TimeTable) Period() float64 { return tt.period }

// NumProfiles returns the number of distinct edge profiles.
func (tt *TimeTable) NumProfiles() int { return len(tt.profiles) }

// memoryFootprintBytes estimates the heap bytes of the table.
func (tt *TimeTable) memoryFootprintBytes() int64 {
	b := int64(len(tt.arcProf)) * 4
	for _, p := range tt.profiles {
		b += int64(len(p.Times)) * 16
	}
	return b
}

// Metric evaluates arc traversal costs. Arc indices are CSR positions
// (see Graph.ArcBase); t is an absolute departure time at the arc's
// tail. Implementations must satisfy Cost(arc, t) ≥ LowerBound(arc) for
// every t, and the FIFO property t1 ≤ t2 ⇒ t1+Cost(arc,t1) ≤
// t2+Cost(arc,t2) — the two contracts the search layer's exactness
// proofs rest on.
type Metric interface {
	// Cost returns the cost of traversing the arc departing its tail at
	// absolute time t.
	Cost(arc int32, t float64) float64
	// LowerBound returns the arc's minimum cost over the whole time
	// domain — its weight in the lower-bound graph.
	LowerBound(arc int32) float64
	// TimeDependent reports whether Cost can vary with t.
	TimeDependent() bool
}

// Static is the classic scalar metric: every arc costs its graph weight
// at every departure time. It is the Metric of graphs without time
// profiles.
type Static struct{ g *Graph }

// Cost implements Metric; it ignores the departure time.
func (m Static) Cost(arc int32, _ float64) float64 { return m.g.weights[arc] }

// LowerBound implements Metric.
func (m Static) LowerBound(arc int32) float64 { return m.g.weights[arc] }

// TimeDependent implements Metric.
func (m Static) TimeDependent() bool { return false }

// TimeDependentMetric evaluates arcs against the graph's time table:
// profiled arcs interpolate their profile at the departure time, the
// rest fall back to the static weight (which equals their lower bound).
type TimeDependentMetric struct{ g *Graph }

// Cost implements Metric.
func (m TimeDependentMetric) Cost(arc int32, t float64) float64 { return m.g.CostAt(arc, t) }

// LowerBound implements Metric. The CSR weight of a profiled arc is
// maintained as its profile minimum, so this is a plain array read.
func (m TimeDependentMetric) LowerBound(arc int32) float64 { return m.g.weights[arc] }

// TimeDependent implements Metric.
func (m TimeDependentMetric) TimeDependent() bool { return true }

// Metric returns the graph's cost metric: TimeDependentMetric when some
// attached profile actually varies with time, Static otherwise (a graph
// whose profiles are all constant is semantically a static graph, and is
// served as one).
func (g *Graph) Metric() Metric {
	if g.TimeVarying() {
		return TimeDependentMetric{g: g}
	}
	return Static{g: g}
}

// HasTimeProfiles reports whether any arc carries an attached profile —
// the structural predicate serialization uses. A graph can have profiles
// yet not be TimeVarying (all of them constant).
func (g *Graph) HasTimeProfiles() bool {
	return g.tt != nil && len(g.tt.profiles) > 0
}

// TimeVarying reports whether any attached profile actually varies with
// departure time — the evaluation predicate the search layer keys off.
// Non-varying graphs answer identically at every departure and run the
// byte-identical static code paths (same caches, same sharing).
func (g *Graph) TimeVarying() bool {
	return g.tt != nil && g.tt.varying
}

// TimeTable returns the attached time table, nil for static graphs.
func (g *Graph) TimeTable() *TimeTable { return g.tt }

// TimePeriod returns the period of the graph's time domain
// (DefaultPeriod when no time table is attached).
func (g *Graph) TimePeriod() float64 {
	if g.tt != nil {
		return g.tt.period
	}
	return DefaultPeriod
}

// ArcBase returns the CSR index of v's first out-arc; the arc of
// Neighbors(v)'s i-th entry is ArcBase(v)+i. The Dijkstra family uses it
// to evaluate per-arc costs through a Metric.
func (g *Graph) ArcBase(v VertexID) int32 { return g.offsets[v] }

// CostAt returns the cost of the arc when its tail is left at absolute
// time t: the profile evaluation for profiled arcs, the static weight
// otherwise.
func (g *Graph) CostAt(arc int32, t float64) float64 {
	if g.tt == nil {
		return g.weights[arc]
	}
	pid := g.tt.evalProf[arc]
	if pid < 0 {
		return g.weights[arc]
	}
	return g.tt.profiles[pid].Eval(t, g.tt.period)
}

// ArcProfile returns the profile of the arc and whether one is attached.
func (g *Graph) ArcProfile(arc int32) (Profile, bool) {
	if g.tt == nil || g.tt.arcProf[arc] < 0 {
		return Profile{}, false
	}
	return g.tt.profiles[g.tt.arcProf[arc]], true
}
