package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"skysr/internal/geo"
)

func pt(x, y float64) geo.Point { return geo.Point{Lon: x, Lat: y} }

// buildProfiled returns a small undirected graph with a profile on edge
// 0–1 and a static edge 1–2.
func buildProfiled(t *testing.T, p Profile) *Graph {
	t.Helper()
	b := NewBuilder(false)
	if err := b.SetTimePeriod(100); err != nil {
		t.Fatal(err)
	}
	b.AddVertex(pt(0, 0))
	b.AddVertex(pt(1, 0))
	b.AddVertex(pt(2, 0))
	e01 := b.AddEdge(0, 1, 7)
	b.AddEdge(1, 2, 3)
	if err := b.SetEdgeProfile(e01, p); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

func TestProfileValidate(t *testing.T) {
	period := 100.0
	cases := []struct {
		name string
		p    Profile
		ok   bool
	}{
		{"constant", ConstantProfile(5), true},
		{"rush hour", Profile{Times: []float64{0, 20, 30, 50}, Costs: []float64{5, 5, 9, 5}}, true},
		{"empty", Profile{}, false},
		{"length mismatch", Profile{Times: []float64{0, 10}, Costs: []float64{1}}, false},
		{"unsorted", Profile{Times: []float64{10, 5}, Costs: []float64{1, 1}}, false},
		{"duplicate time", Profile{Times: []float64{10, 10}, Costs: []float64{1, 1}}, false},
		{"time past period", Profile{Times: []float64{0, 100}, Costs: []float64{1, 1}}, false},
		{"negative time", Profile{Times: []float64{-1}, Costs: []float64{1}}, false},
		{"negative cost", Profile{Times: []float64{0}, Costs: []float64{-1}}, false},
		{"nan cost", Profile{Times: []float64{0}, Costs: []float64{math.NaN()}}, false},
		{"inf cost", Profile{Times: []float64{0}, Costs: []float64{math.Inf(1)}}, false},
		// Drops 10 cost over 2 time: slope -5 < -1 (a later departure
		// would overtake an earlier one).
		{"non-FIFO segment", Profile{Times: []float64{0, 2}, Costs: []float64{10, 0}}, false},
		// The wrap segment from (99, 0) back to (0+100, 50) rises; the
		// forward segment 0→99 falls 50 over 99 (slope ≈ −0.5): FIFO.
		{"gentle decline", Profile{Times: []float64{0, 99}, Costs: []float64{50, 0}}, true},
		// Wrap segment falls 50 over 1: slope −50, non-FIFO.
		{"non-FIFO wrap", Profile{Times: []float64{0, 99}, Costs: []float64{0, 50}}, false},
	}
	for _, c := range cases {
		err := c.p.Validate(period)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok {
			if err == nil {
				t.Errorf("%s: validation passed, want error", c.name)
			} else if !errors.Is(err, ErrBadProfile) {
				t.Errorf("%s: error %v does not wrap ErrBadProfile", c.name, err)
			}
		}
	}
	if err := ConstantProfile(1).Validate(0); !errors.Is(err, ErrBadProfile) {
		t.Errorf("zero period accepted: %v", err)
	}
}

func TestProfileEval(t *testing.T) {
	p := Profile{Times: []float64{10, 20, 40}, Costs: []float64{2, 6, 4}}
	if err := p.Validate(100); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ t, want float64 }{
		{10, 2}, {20, 6}, {40, 4},
		{15, 4},                         // midway 2→6
		{30, 5},                         // midway 6→4
		{110, 2},                        // periodic wrap of t=10
		{70, 4.0 + (2.0-4.0)*30.0/70.0}, // wrap segment (40,4)→(110,2)
		{0, 4.0 + (2.0-4.0)*60.0/70.0},  // wrap segment, before first breakpoint
		{-90, 2},                        // negative time wraps to 10
	}
	for _, c := range cases {
		if got := p.Eval(c.t, 100); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Eval(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if got := ConstantProfile(3.5).Eval(77, 100); got != 3.5 {
		t.Errorf("constant Eval = %v", got)
	}
	if p.Min() != 2 {
		t.Errorf("Min = %v, want 2", p.Min())
	}
	if p.Constant() || !ConstantProfile(1).Constant() {
		t.Error("Constant() misreports")
	}
}

// TestProfileFIFO checks the arc-level FIFO property on random valid
// profiles: departing later never arrives earlier.
func TestProfileFIFO(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const period = 100.0
	for trial := 0; trial < 200; trial++ {
		p := randomFIFOProfile(rng, period, 1+rng.Intn(6))
		if err := p.Validate(period); err != nil {
			t.Fatalf("trial %d: generated profile invalid: %v", trial, err)
		}
		prev := math.Inf(-1)
		for step := 0; step <= 400; step++ {
			tm := float64(step) * period / 200 // two periods
			arr := tm + p.Eval(tm, period)
			if arr < prev-1e-9 {
				t.Fatalf("trial %d: FIFO violated at t=%v: arrival %v after %v", trial, tm, arr, prev)
			}
			if arr > prev {
				prev = arr
			}
		}
	}
}

// randomFIFOProfile builds a random profile that satisfies the FIFO slope
// bound by construction: each segment's cost delta is capped at the
// segment length.
func randomFIFOProfile(rng *rand.Rand, period float64, n int) Profile {
	times := make([]float64, 0, n)
	seen := map[float64]bool{}
	for len(times) < n {
		tm := math.Floor(rng.Float64()*period*8) / 8
		if tm >= period || seen[tm] {
			continue
		}
		seen[tm] = true
		times = append(times, tm)
	}
	sortFloats(times)
	costs := make([]float64, n)
	costs[0] = 1 + rng.Float64()*10
	for i := 1; i < n; i++ {
		gap := times[i] - times[i-1]
		lo := math.Max(0, costs[i-1]-gap) // slope ≥ −1
		costs[i] = lo + rng.Float64()*(costs[i-1]+5-lo)
	}
	// Repair the FIFO slope bound to a fixpoint: raising a cost to fix
	// one segment can break the next, so sweep until stable (the repairs
	// only raise costs and are bounded above, so this terminates).
	for pass := 0; pass < 64; pass++ {
		changed := false
		wrapGap := times[0] + period - times[n-1]
		if costs[0] < costs[n-1]-wrapGap {
			costs[0] = costs[n-1] - wrapGap
			changed = true
		}
		for i := 1; i < n; i++ {
			gap := times[i] - times[i-1]
			if costs[i] < costs[i-1]-gap {
				costs[i] = costs[i-1] - gap
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	p := Profile{Times: times, Costs: costs}
	if p.Validate(period) != nil {
		return ConstantProfile(costs[0])
	}
	return p
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestBuilderProfileWiring(t *testing.T) {
	p := Profile{Times: []float64{0, 50}, Costs: []float64{4, 10}}
	g := buildProfiled(t, p)

	if !g.HasTimeProfiles() {
		t.Fatal("HasTimeProfiles = false")
	}
	if g.TimePeriod() != 100 {
		t.Fatalf("TimePeriod = %v", g.TimePeriod())
	}
	if !g.Metric().TimeDependent() {
		t.Fatal("Metric not time-dependent")
	}
	// The profiled edge's weight column holds the profile minimum, not
	// the declared static weight 7.
	if w, ok := g.EdgeWeight(0, 1); !ok || w != 4 {
		t.Fatalf("EdgeWeight(0,1) = %v, %v; want 4 (profile min)", w, ok)
	}
	if w, ok := g.EdgeWeight(1, 2); !ok || w != 3 {
		t.Fatalf("EdgeWeight(1,2) = %v, %v", w, ok)
	}
	// Both arcs of the undirected profiled edge evaluate the profile.
	m := g.Metric()
	for _, uv := range [][2]VertexID{{0, 1}, {1, 0}} {
		arc := findArc(t, g, uv[0], uv[1])
		if got := m.Cost(arc, 0); got != 4 {
			t.Errorf("Cost(%v→%v, 0) = %v, want 4", uv[0], uv[1], got)
		}
		if got := m.Cost(arc, 50); got != 10 {
			t.Errorf("Cost(%v→%v, 50) = %v, want 10", uv[0], uv[1], got)
		}
		if got := m.LowerBound(arc); got != 4 {
			t.Errorf("LowerBound(%v→%v) = %v, want 4", uv[0], uv[1], got)
		}
	}
	// The static edge ignores the departure time.
	arc := findArc(t, g, 1, 2)
	if got := m.Cost(arc, 50); got != 3 {
		t.Errorf("static arc Cost = %v, want 3", got)
	}
	// A static graph's metric is Static.
	if NewBuilder(false).Build().Metric().TimeDependent() {
		t.Error("empty graph's metric is time-dependent")
	}
}

func findArc(t *testing.T, g *Graph, u, v VertexID) int32 {
	t.Helper()
	ts, _ := g.Neighbors(u)
	for i, x := range ts {
		if x == v {
			return g.ArcBase(u) + int32(i)
		}
	}
	t.Fatalf("no arc %d→%d", u, v)
	return -1
}

func TestApplyProfileEdits(t *testing.T) {
	g := buildProfiled(t, Profile{Times: []float64{0, 50}, Costs: []float64{4, 10}})

	// Attach a profile to the static edge 1–2 and clear the one on 0–1.
	out, err := g.Apply(Edits{SetProfiles: []ProfileChange{
		{U: 1, V: 2, Profile: Profile{Times: []float64{0, 30}, Costs: []float64{2, 8}}},
		{U: 0, V: 1, Clear: true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out.ArcProfile(findArc(t, out, 0, 1)); ok {
		t.Error("cleared edge still profiled")
	}
	// The cleared edge keeps its lower-bound weight.
	if w, _ := out.EdgeWeight(0, 1); w != 4 {
		t.Errorf("cleared edge weight = %v, want 4", w)
	}
	if w, _ := out.EdgeWeight(1, 2); w != 2 {
		t.Errorf("newly profiled edge weight = %v, want 2 (profile min)", w)
	}
	if got := out.CostAt(findArc(t, out, 2, 1), 30); got != 8 {
		t.Errorf("reverse arc of profiled edge costs %v at t=30, want 8", got)
	}
	// The receiver is untouched.
	if _, ok := g.ArcProfile(findArc(t, g, 0, 1)); !ok {
		t.Error("Apply mutated the receiver")
	}

	// A weight edit drops the edge's profile.
	out2, err := out.Apply(Edits{SetWeights: []EdgeChange{{U: 1, V: 2, Weight: 9}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out2.ArcProfile(findArc(t, out2, 1, 2)); ok {
		t.Error("weight edit kept the profile")
	}
	if out2.HasTimeProfiles() {
		t.Error("graph with no profiled edges still reports HasTimeProfiles")
	}

	// Invalid profiles reject the batch with the typed error.
	_, err = g.Apply(Edits{SetProfiles: []ProfileChange{
		{U: 0, V: 1, Profile: Profile{Times: []float64{5, 1}, Costs: []float64{1, 1}}},
	}})
	if !errors.Is(err, ErrBadProfile) {
		t.Errorf("unsorted profile accepted: %v", err)
	}
	_, err = g.Apply(Edits{SetProfiles: []ProfileChange{{U: 0, V: 2}}})
	if err == nil {
		t.Error("profile edit on missing edge accepted")
	}
}

func TestStructuralRebuildCarriesProfiles(t *testing.T) {
	g := buildProfiled(t, Profile{Times: []float64{0, 50}, Costs: []float64{4, 10}})
	out, err := g.Apply(Edits{AddEdges: []EdgeChange{{U: 0, V: 2, Weight: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if out.TimePeriod() != 100 {
		t.Errorf("period not carried: %v", out.TimePeriod())
	}
	p, ok := out.ArcProfile(findArc(t, out, 0, 1))
	if !ok {
		t.Fatal("profile lost across structural rebuild")
	}
	if p.Eval(50, out.TimePeriod()) != 10 {
		t.Errorf("carried profile evaluates wrong: %v", p)
	}
	if _, ok := out.ArcProfile(findArc(t, out, 0, 2)); ok {
		t.Error("added edge gained a profile")
	}
	// Removing the profiled edge drops its profile entirely.
	out2, err := out.Apply(Edits{RemoveEdges: []EdgeChange{{U: 0, V: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if out2.HasTimeProfiles() {
		t.Error("removed edge's profile survived")
	}
}

func TestReversedDropsTimeTable(t *testing.T) {
	b := NewBuilder(true)
	b.AddVertex(pt(0, 0))
	b.AddVertex(pt(1, 0))
	e := b.AddEdge(0, 1, 5)
	if err := b.SetEdgeProfile(e, Profile{Times: []float64{0, 40000}, Costs: []float64{2, 6}}); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if !g.HasTimeProfiles() {
		t.Fatal("directed graph lost its profile")
	}
	rg := g.Reversed()
	if rg.HasTimeProfiles() {
		t.Error("reversed graph carries a time table; reverse searches must run on the lower-bound graph")
	}
	// The reversed arc carries the lower-bound weight.
	if w, ok := rg.EdgeWeight(1, 0); !ok || w != 2 {
		t.Errorf("reversed lower-bound weight = %v, %v; want 2", w, ok)
	}
}

func TestBuilderProfileErrors(t *testing.T) {
	b := NewBuilder(false)
	b.AddVertex(pt(0, 0))
	b.AddVertex(pt(1, 0))
	e := b.AddEdge(0, 1, 5)
	if err := b.SetEdgeProfile(e, Profile{Times: []float64{0, 2}, Costs: []float64{10, 0}}); !errors.Is(err, ErrBadProfile) {
		t.Errorf("non-FIFO profile accepted by builder: %v", err)
	}
	if err := b.SetEdgeProfile(99, ConstantProfile(1)); err == nil {
		t.Error("dead edge index accepted")
	}
	if err := b.SetTimePeriod(-1); !errors.Is(err, ErrBadProfile) {
		t.Errorf("negative period accepted: %v", err)
	}
	if err := b.SetEdgeProfile(e, ConstantProfile(1)); err != nil {
		t.Fatal(err)
	}
	if err := b.SetTimePeriod(50); err == nil {
		t.Error("period change after profiles attached accepted")
	}
	if err := b.SetTimePeriod(DefaultPeriod); err != nil {
		t.Errorf("re-declaring the effective period failed: %v", err)
	}
}

// TestPeriodStickyAfterClearing pins the declared time domain: clearing
// or removing the last profiled edge must not revert the period to the
// default.
func TestPeriodStickyAfterClearing(t *testing.T) {
	g := buildProfiled(t, Profile{Times: []float64{0, 50}, Costs: []float64{4, 10}})

	// Patch path: clear the only profile.
	out, err := g.Apply(Edits{SetProfiles: []ProfileChange{{U: 0, V: 1, Clear: true}}})
	if err != nil {
		t.Fatal(err)
	}
	if out.HasTimeProfiles() {
		t.Fatal("profile survived clearing")
	}
	if out.TimePeriod() != 100 {
		t.Fatalf("period after clear = %v, want 100", out.TimePeriod())
	}
	// A later profile must validate against the declared period, not the
	// default day.
	_, err = out.Apply(Edits{SetProfiles: []ProfileChange{
		{U: 0, V: 1, Profile: Profile{Times: []float64{0, 5000}, Costs: []float64{1, 1}}},
	}})
	if !errors.Is(err, ErrBadProfile) {
		t.Fatalf("breakpoint past declared period accepted after clear: %v", err)
	}

	// Structural path: remove the only profiled edge.
	out2, err := g.Apply(Edits{RemoveEdges: []EdgeChange{{U: 0, V: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if out2.HasTimeProfiles() {
		t.Fatal("removed edge's profile survived")
	}
	if out2.TimePeriod() != 100 {
		t.Fatalf("period after structural removal = %v, want 100", out2.TimePeriod())
	}

	// A graph that never declared a period stays table-less across edits.
	b := NewBuilder(false)
	b.AddVertex(pt(0, 0))
	b.AddVertex(pt(1, 0))
	b.AddEdge(0, 1, 5)
	sg := b.Build()
	sOut, err := sg.Apply(Edits{SetWeights: []EdgeChange{{U: 0, V: 1, Weight: 6}}})
	if err != nil {
		t.Fatal(err)
	}
	if sOut.TimeTable() != nil {
		t.Fatal("static graph grew a time table from a weight edit")
	}
	sOut2, err := sg.Apply(Edits{AddEdges: []EdgeChange{{U: 1, V: 0, Weight: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if sOut2.TimeTable() != nil {
		t.Fatal("static graph grew a time table from a structural edit")
	}
}
