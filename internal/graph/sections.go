package graph

import (
	"fmt"

	"skysr/internal/geo"
)

// This file is the serialization seam of the package: GraphParts exposes
// the frozen CSR columns so a writer can emit them verbatim, and
// FromParts rebuilds a Graph around externally supplied columns — in
// particular slices aliasing a read-only memory mapping — without going
// through the Builder. Everything else in the package treats the columns
// as immutable, so a Graph over mmap'd sections is safe as long as the
// mapping outlives it.

// GraphParts is the frozen column-level view of a Graph: exactly the
// state a byte-level serializer needs to round-trip one. Slices are the
// Graph's own backing arrays (from Parts) or become the new Graph's
// backing arrays (to FromParts) — they are never copied, and must not be
// mutated on either side.
type GraphParts struct {
	Directed bool
	Points   []geo.Point
	// CSR adjacency columns; see Graph. Weights holds each arc's
	// lower-bound cost (the profile minimum for time-profiled arcs), so
	// round-tripping the column verbatim preserves it bit-exactly.
	Offsets []int32
	Targets []VertexID
	Weights []float64
	// Cat holds each vertex's primary category (NoCategory for road
	// vertices); ExtraCats the §6 multi-category extension (nil for most
	// graphs; entries repeat the primary at position 0).
	Cat       []CategoryID
	ExtraCats map[VertexID][]CategoryID
	// NumEdges is the logical edge count (undirected edges counted once).
	NumEdges int
	// TT is the optional time-dependent cost table (nil when static).
	TT *TimeTable
}

// Parts returns the column-level view of g. The slices alias g's backing
// arrays and must not be mutated.
func (g *Graph) Parts() GraphParts {
	return GraphParts{
		Directed:  g.directed,
		Points:    g.points,
		Offsets:   g.offsets,
		Targets:   g.targets,
		Weights:   g.weights,
		Cat:       g.cat,
		ExtraCats: g.extraCats,
		NumEdges:  g.numEdges,
		TT:        g.tt,
	}
}

// FromParts freezes a Graph directly around the supplied columns,
// validating the CSR invariants the Builder would have enforced. The
// slices are adopted, not copied: callers hand over ownership, and
// read-only backings (an mmap'd file) are fine because no Graph method
// writes to them. The PoI list is re-derived from the category column.
func FromParts(p GraphParts) (*Graph, error) {
	n := len(p.Points)
	if len(p.Offsets) != n+1 {
		return nil, fmt.Errorf("graph: offsets length %d, want %d", len(p.Offsets), n+1)
	}
	if len(p.Cat) != n {
		return nil, fmt.Errorf("graph: categories length %d, want %d", len(p.Cat), n)
	}
	numArcs := len(p.Targets)
	if len(p.Weights) != numArcs {
		return nil, fmt.Errorf("graph: weights length %d, want %d arcs", len(p.Weights), numArcs)
	}
	if p.Offsets[0] != 0 || int(p.Offsets[n]) != numArcs {
		return nil, fmt.Errorf("graph: offsets span [%d,%d], want [0,%d]", p.Offsets[0], p.Offsets[n], numArcs)
	}
	for v := 0; v < n; v++ {
		if p.Offsets[v] > p.Offsets[v+1] {
			return nil, fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
	}
	for i, t := range p.Targets {
		if t < 0 || int(t) >= n {
			return nil, fmt.Errorf("graph: arc %d target %d out of range", i, t)
		}
	}
	wantArcs := p.NumEdges
	if !p.Directed {
		wantArcs = 2 * p.NumEdges
	}
	if numArcs != wantArcs {
		return nil, fmt.Errorf("graph: %d arcs for %d logical edges (directed=%v)", numArcs, p.NumEdges, p.Directed)
	}
	if tt := p.TT; tt != nil && len(tt.arcProf) != numArcs {
		return nil, fmt.Errorf("graph: time table covers %d arcs, want %d", len(tt.arcProf), numArcs)
	}
	var pois []VertexID
	for v := 0; v < n; v++ {
		if p.Cat[v] != NoCategory {
			pois = append(pois, VertexID(v))
		}
	}
	return &Graph{
		directed:  p.Directed,
		points:    p.Points,
		offsets:   p.Offsets,
		targets:   p.Targets,
		weights:   p.Weights,
		tt:        p.TT,
		cat:       p.Cat,
		extraCats: p.ExtraCats,
		pois:      pois,
		numEdges:  p.NumEdges,
	}, nil
}

// NewTimeTable builds a TimeTable from its serialized parts: the period,
// the per-arc profile index column (-1 for static arcs), and the profile
// set. Profiles are validated exactly as on the build path, and the
// evaluation table is derived. The slices are adopted, not copied.
func NewTimeTable(period float64, arcProf []int32, profiles []Profile) (*TimeTable, error) {
	if period <= 0 {
		return nil, fmt.Errorf("%w: period %g", ErrBadProfile, period)
	}
	for i, p := range profiles {
		if err := p.Validate(period); err != nil {
			return nil, fmt.Errorf("profile %d: %w", i, err)
		}
	}
	for i, pid := range arcProf {
		if pid < -1 || int(pid) >= len(profiles) {
			return nil, fmt.Errorf("%w: arc %d references profile %d of %d", ErrBadProfile, i, pid, len(profiles))
		}
	}
	tt := &TimeTable{period: period, arcProf: arcProf, profiles: profiles}
	tt.finalize()
	return tt, nil
}

// ArcProfileIDs returns the per-arc profile index column (-1 for static
// arcs). The slice aliases the table's backing array and must not be
// mutated.
func (tt *TimeTable) ArcProfileIDs() []int32 { return tt.arcProf }

// Profiles returns the profile set, indexed by the ids in ArcProfileIDs.
// The slice and the profiles' breakpoint slices must not be mutated.
func (tt *TimeTable) Profiles() []Profile { return tt.profiles }
