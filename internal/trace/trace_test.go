package trace

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIDStringParseRoundTrip(t *testing.T) {
	seen := map[ID]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID()
		if id == 0 {
			t.Fatal("NewID returned zero")
		}
		if seen[id] {
			t.Fatalf("duplicate ID %s after %d draws", id, i)
		}
		seen[id] = true
		s := id.String()
		if len(s) != 16 {
			t.Fatalf("ID string %q is not 16 chars", s)
		}
		back, ok := ParseID(s)
		if !ok || back != id {
			t.Fatalf("ParseID(%q) = %v, %v; want %v, true", s, back, ok, id)
		}
	}
	for _, bad := range []string{"", "xyz", "00000000000000000", "000000000000000g", "0000000000000000"} {
		if _, ok := ParseID(bad); ok {
			t.Errorf("ParseID(%q) accepted", bad)
		}
	}
}

func TestSpanTreeAndStatus(t *testing.T) {
	tr := New("route")
	if tr.Status() != StatusOK {
		t.Fatalf("new trace status = %v, want ok", tr.Status())
	}
	root := tr.Root()
	a := root.StartSpan("nninit")
	a.Set("routes", 14)
	a.Set("ratio", 0.43)
	a.End()
	b := root.Record("bounds", tr.Start(), 3*time.Millisecond)
	b.Set("from_index", true)
	tr.SetStatus(StatusDeadline, "deadline exceeded")
	tr.SetStatus(StatusOK, "") // must not clear the failure
	tr.Finish()

	if got := tr.Status(); got != StatusDeadline {
		t.Fatalf("status = %v, want deadline", got)
	}
	if tr.Err() != "deadline exceeded" {
		t.Fatalf("err = %q", tr.Err())
	}
	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "nninit" || kids[1].Name() != "bounds" {
		t.Fatalf("children = %v", kids)
	}
	attrs := kids[0].Attrs()
	if len(attrs) != 2 || attrs[0] != (Attr{"routes", "14"}) || attrs[1] != (Attr{"ratio", "0.43"}) {
		t.Fatalf("attrs = %v", attrs)
	}
	if d := kids[1].Duration(); d != 3*time.Millisecond {
		t.Fatalf("recorded duration = %v", d)
	}
}

func TestConcurrentChildren(t *testing.T) {
	tr := New("batch")
	root := tr.Root()
	var wg sync.WaitGroup
	const n = 64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := root.StartSpan("query")
			sp.Set("k", 1)
			sp.End()
		}()
	}
	wg.Wait()
	tr.Finish()
	if got := len(root.Children()); got != n {
		t.Fatalf("children = %d, want %d", got, n)
	}
}

func TestContextPlumbing(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("FromContext on empty context should be nil")
	}
	if SpanFromContext(nil) != nil {
		t.Fatal("SpanFromContext(nil) should be nil")
	}
	tr := New("route")
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("FromContext lost the trace")
	}
	if SpanFromContext(ctx) != tr.Root() {
		t.Fatal("SpanFromContext did not return the root span")
	}
}

func TestJSONAndSummary(t *testing.T) {
	tr := New("route")
	sp := tr.Root().StartSpan("leg[0]")
	sp.Set("settled", 123)
	sp.End()
	tr.SetStatus(StatusError, "boom")
	tr.Finish()

	j := tr.JSON()
	if j.ID != tr.ID().String() || j.Status != "error" || j.Error != "boom" {
		t.Fatalf("JSON header = %+v", j)
	}
	if len(j.Root.Children) != 1 || j.Root.Children[0].Attrs["settled"] != "123" {
		t.Fatalf("JSON tree = %+v", j.Root)
	}
	if _, err := json.Marshal(j); err != nil {
		t.Fatalf("marshal: %v", err)
	}

	sum := tr.Summary()
	if sum.Spans != 2 || sum.Status != "error" || sum.ID != j.ID {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestRender(t *testing.T) {
	tr := New("route")
	a := tr.Root().StartSpan("nninit")
	a.Set("routes", 3)
	a.End()
	tr.Root().StartSpan("leg[0]").End()
	tr.Finish()
	var b strings.Builder
	tr.Render(&b)
	out := b.String()
	for _, want := range []string{"trace " + tr.ID().String(), "status=ok", "├─ nninit", "routes=3", "└─ leg[0]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestRecorderTailSampling(t *testing.T) {
	rec := NewRecorder(8, 50*time.Millisecond, 0)

	// Fast OK traces with sample=0 are always dropped, lock-free.
	fast := New("route")
	fast.Finish()
	if reason, kept := rec.Offer(fast); kept {
		t.Fatalf("fast OK trace kept (%q) at sample=0", reason)
	}

	// Errors are always kept.
	bad := New("route")
	bad.SetStatus(StatusCancelled, "client gone")
	bad.Finish()
	if reason, kept := rec.Offer(bad); !kept || reason != "error" {
		t.Fatalf("error trace: kept=%v reason=%q", kept, reason)
	}
	if bad.KeptReason() != "error" {
		t.Fatalf("kept reason not stamped: %q", bad.KeptReason())
	}

	// Slow traces are always kept: fake slowness via a backdated root.
	slow := New("route")
	slow.root.start = time.Now().Add(-time.Second)
	slow.Finish()
	if reason, kept := rec.Offer(slow); !kept || reason != "slow" {
		t.Fatalf("slow trace: kept=%v reason=%q", kept, reason)
	}

	if rec.KeptTotal() != 2 || rec.DroppedTotal() != 1 {
		t.Fatalf("kept=%d dropped=%d", rec.KeptTotal(), rec.DroppedTotal())
	}
	if got := rec.Traces(); len(got) != 2 || got[0] != slow || got[1] != bad {
		t.Fatalf("Traces() = %v", got)
	}
	if rec.Get(bad.ID()) != bad {
		t.Fatal("Get lost the error trace")
	}
	if rec.Get(fast.ID()) != nil {
		t.Fatal("Get found a dropped trace")
	}
}

func TestRecorderSampleAll(t *testing.T) {
	rec := NewRecorder(4, 0, 1)
	for i := 0; i < 10; i++ {
		tr := New("route")
		tr.Finish()
		if reason, kept := rec.Offer(tr); !kept || reason != "sampled" {
			t.Fatalf("sample=1 trace %d: kept=%v reason=%q", i, kept, reason)
		}
	}
	if rec.Len() != 4 {
		t.Fatalf("ring len = %d, want capacity 4", rec.Len())
	}
	if got := rec.Traces(); len(got) != 4 {
		t.Fatalf("Traces() len = %d", len(got))
	}
}

func TestRecorderRingEviction(t *testing.T) {
	rec := NewRecorder(3, 0, 0)
	var traces []*Trace
	for i := 0; i < 5; i++ {
		tr := New("route")
		tr.SetStatus(StatusError, "e")
		tr.Finish()
		rec.Offer(tr)
		traces = append(traces, tr)
	}
	got := rec.Traces()
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	// Newest first: traces[4], traces[3], traces[2].
	for i := 0; i < 3; i++ {
		if got[i] != traces[4-i] {
			t.Fatalf("Traces()[%d] = %v, want %v", i, got[i].ID(), traces[4-i].ID())
		}
	}
	if rec.Get(traces[0].ID()) != nil {
		t.Fatal("evicted trace still reachable")
	}
}

func TestRecorderConcurrentOffer(t *testing.T) {
	rec := NewRecorder(16, 0, 0.5)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				tr := New("route")
				if j%7 == 0 {
					tr.SetStatus(StatusPanic, "p")
				}
				tr.Finish()
				rec.Offer(tr)
			}
		}()
	}
	wg.Wait()
	if rec.Len() != 16 {
		t.Fatalf("ring len = %d", rec.Len())
	}
	total := rec.KeptTotal() + rec.DroppedTotal()
	if total != 1600 {
		t.Fatalf("kept+dropped = %d, want 1600", total)
	}
	// ~29% guaranteed keeps (panics) plus half of the rest: the kept
	// count must be well away from both extremes.
	if rec.KeptTotal() < 400 || rec.KeptTotal() > 1400 {
		t.Fatalf("kept = %d, implausible for sample=0.5 + forced errors", rec.KeptTotal())
	}
}

func TestNilRecorderOffer(t *testing.T) {
	var rec *Recorder
	tr := New("route")
	tr.Finish()
	if reason, kept := rec.Offer(tr); kept || reason != "" {
		t.Fatal("nil recorder kept a trace")
	}
	if _, kept := NewRecorder(4, 0, 1).Offer(nil); kept {
		t.Fatal("nil trace kept")
	}
}

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		StatusOK: "ok", StatusCancelled: "cancelled", StatusDeadline: "deadline",
		StatusError: "error", StatusPanic: "panic", Status(42): "Status(42)",
	}
	for st, want := range cases {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(st), st.String(), want)
		}
	}
}
