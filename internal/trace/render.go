package trace

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// The wire and terminal forms of a trace. JSON() feeds the
// /api/debug/traces/{id} endpoint; Summary() feeds the list endpoint;
// Render() prints the human-readable tree skysr-query -trace shows.

// SpanJSON is the wire form of one span. StartNS is the offset from the
// trace start, so a client can lay spans on a timeline without parsing
// timestamps.
type SpanJSON struct {
	Name       string            `json:"name"`
	StartNS    int64             `json:"start_ns"`
	DurationNS int64             `json:"duration_ns"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []SpanJSON        `json:"children,omitempty"`
}

// TraceJSON is the wire form of a full trace tree.
type TraceJSON struct {
	ID         string   `json:"id"`
	Name       string   `json:"name"`
	Start      string   `json:"start"`
	DurationMS float64  `json:"duration_ms"`
	Status     string   `json:"status"`
	Error      string   `json:"error,omitempty"`
	Kept       string   `json:"kept,omitempty"`
	Root       SpanJSON `json:"root"`
}

// Summary is the wire form of one list-endpoint entry.
type Summary struct {
	ID         string  `json:"id"`
	Name       string  `json:"name"`
	Start      string  `json:"start"`
	DurationMS float64 `json:"duration_ms"`
	Status     string  `json:"status"`
	Error      string  `json:"error,omitempty"`
	Kept       string  `json:"kept,omitempty"`
	Spans      int     `json:"spans"`
}

// JSON converts the trace to its wire form.
func (t *Trace) JSON() TraceJSON {
	return TraceJSON{
		ID:         t.id.String(),
		Name:       t.name,
		Start:      t.start.UTC().Format(time.RFC3339Nano),
		DurationMS: float64(t.Duration().Nanoseconds()) / 1e6,
		Status:     t.Status().String(),
		Error:      t.Err(),
		Kept:       t.KeptReason(),
		Root:       spanJSON(t.root, t.start),
	}
}

func spanJSON(s *Span, origin time.Time) SpanJSON {
	out := SpanJSON{
		Name:       s.name,
		StartNS:    s.start.Sub(origin).Nanoseconds(),
		DurationNS: s.Duration().Nanoseconds(),
	}
	if attrs := s.Attrs(); len(attrs) > 0 {
		out.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			out.Attrs[a.Key] = a.Val
		}
	}
	for _, c := range s.Children() {
		out.Children = append(out.Children, spanJSON(c, origin))
	}
	return out
}

// Summary converts the trace to its list-entry form.
func (t *Trace) Summary() Summary {
	return Summary{
		ID:         t.id.String(),
		Name:       t.name,
		Start:      t.start.UTC().Format(time.RFC3339Nano),
		DurationMS: float64(t.Duration().Nanoseconds()) / 1e6,
		Status:     t.Status().String(),
		Error:      t.Err(),
		Kept:       t.KeptReason(),
		Spans:      countSpans(t.root),
	}
}

func countSpans(s *Span) int {
	n := 1
	for _, c := range s.Children() {
		n += countSpans(c)
	}
	return n
}

// Render writes the human-readable tree:
//
//	trace 1f3c... route 12.4ms status=ok
//	└─ route 12.4ms
//	   ├─ nninit 1.2ms routes=14 ratio=0.43
//	   ├─ bounds 0.4ms semantic=812.4
//	   ...
func (t *Trace) Render(w io.Writer) {
	fmt.Fprintf(w, "trace %s %s %s status=%s", t.id, t.name,
		fmtDur(t.Duration()), t.Status())
	if msg := t.Err(); msg != "" {
		fmt.Fprintf(w, " error=%q", msg)
	}
	fmt.Fprintln(w)
	renderSpan(w, t.root, "", true)
}

func renderSpan(w io.Writer, s *Span, prefix string, last bool) {
	connector, childPrefix := "├─ ", prefix+"│  "
	if last {
		connector, childPrefix = "└─ ", prefix+"   "
	}
	var b strings.Builder
	b.WriteString(prefix)
	b.WriteString(connector)
	b.WriteString(s.name)
	b.WriteByte(' ')
	b.WriteString(fmtDur(s.Duration()))
	for _, a := range s.Attrs() {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.Val)
	}
	fmt.Fprintln(w, b.String())
	children := s.Children()
	for i, c := range children {
		renderSpan(w, c, childPrefix, i == len(children)-1)
	}
}

// fmtDur rounds a duration to a readable precision: microsecond below a
// millisecond, 10µs below a second, millisecond above.
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d < time.Second:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}
