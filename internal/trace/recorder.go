package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Recorder is the flight recorder: a bounded ring buffer of recently
// finished traces with a tail-sampling admission policy. Tail sampling
// decides retention *after* the request finishes, when its outcome is
// known:
//
//   - errors, cancellations, deadline blows, and panics are always kept;
//   - requests at or above the slow threshold are always kept;
//   - the healthy fast majority is sampled with probability Sample.
//
// The common case — a fast, successful, unsampled request — takes no
// lock at all: Offer reads the immutable thresholds, advances a
// lock-free PRNG, and returns. Only kept traces pay one mutex
// acquisition to enter the ring.
type Recorder struct {
	capacity int
	slow     time.Duration
	sample   float64
	// sampleBits is Sample mapped onto the uint64 range so the keep
	// decision is one integer compare against the PRNG output.
	sampleBits uint64
	rng        atomic.Uint64

	kept    atomic.Int64
	dropped atomic.Int64

	mu   sync.Mutex
	ring []*Trace // ring[next] is the oldest slot once full
	next int
	full bool
}

// DefaultCapacity is the ring size used when NewRecorder is given a
// non-positive capacity.
const DefaultCapacity = 256

// NewRecorder builds a flight recorder. capacity <= 0 defaults to
// DefaultCapacity; slow <= 0 disables the slow-query rule; sample is
// clamped to [0, 1].
func NewRecorder(capacity int, slow time.Duration, sample float64) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if sample < 0 {
		sample = 0
	}
	if sample > 1 {
		sample = 1
	}
	r := &Recorder{
		capacity: capacity,
		slow:     slow,
		sample:   sample,
		ring:     make([]*Trace, capacity),
	}
	switch {
	case sample >= 1:
		r.sampleBits = ^uint64(0)
	default:
		r.sampleBits = uint64(sample * float64(1<<63) * 2)
	}
	r.rng.Store(uint64(time.Now().UnixNano()) | 1)
	return r
}

// SlowThreshold returns the configured slow-query threshold (zero when
// disabled).
func (r *Recorder) SlowThreshold() time.Duration { return r.slow }

// SampleRate returns the configured probabilistic sampling rate.
func (r *Recorder) SampleRate() float64 { return r.sample }

// Capacity returns the ring size.
func (r *Recorder) Capacity() int { return r.capacity }

// KeptTotal returns how many traces have been admitted since start.
func (r *Recorder) KeptTotal() int64 { return r.kept.Load() }

// DroppedTotal returns how many finished traces were offered but not
// retained.
func (r *Recorder) DroppedTotal() int64 { return r.dropped.Load() }

// Offer applies the tail-sampling policy to a finished trace. It
// reports whether the trace was kept and the reason ("error", "slow",
// or "sampled"); dropped traces return ("", false) without locking.
func (r *Recorder) Offer(t *Trace) (string, bool) {
	if r == nil || t == nil {
		return "", false
	}
	reason := ""
	switch {
	case t.Status() != StatusOK:
		reason = "error"
	case r.slow > 0 && t.Duration() >= r.slow:
		reason = "slow"
	case r.nextRand() < r.sampleBits:
		reason = "sampled"
	default:
		r.dropped.Add(1)
		return "", false
	}
	t.setKeptReason(reason)
	r.kept.Add(1)
	r.mu.Lock()
	r.ring[r.next] = t
	r.next++
	if r.next == r.capacity {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
	return reason, true
}

// nextRand advances the lock-free xorshift64 sampling PRNG. A CAS race
// between concurrent requests merely reuses a state once — harmless for
// sampling purposes — so the loop-free form is fine.
func (r *Recorder) nextRand() uint64 {
	x := r.rng.Load()
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.rng.Store(x)
	return x
}

// Traces returns the retained traces, newest first.
func (r *Recorder) Traces() []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = r.capacity
	}
	out := make([]*Trace, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the most recently written slot.
		idx := (r.next - 1 - i + r.capacity) % r.capacity
		if tr := r.ring[idx]; tr != nil {
			out = append(out, tr)
		}
	}
	return out
}

// Get returns the retained trace with the given ID, or nil.
func (r *Recorder) Get(id ID) *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, tr := range r.ring {
		if tr != nil && tr.id == id {
			return tr
		}
	}
	return nil
}

// Len returns how many traces the ring currently holds.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return r.capacity
	}
	return r.next
}
