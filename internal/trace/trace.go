// Package trace is a dependency-free span-tree tracer for the serving
// tier. A Trace captures one sampled request as a tree of Spans that
// mirrors the search stages — NNinit, the §5.3.3 bounds, each per-leg
// modified-Dijkstra phase, the §6 destination leg — each annotated with
// the counters the stage accumulated (settled vertices, cache hits,
// pruning-rule fires, TD departure offsets). A finished trace therefore
// doubles as a query "explain": it answers "why was *this* query slow?"
// where the aggregate /metrics histograms can only answer "how slow are
// queries lately?".
//
// The package is deliberately minimal: no OpenTelemetry, no exporters,
// no clock abstraction. Traces propagate via context.Context (NewContext
// / FromContext), the search core attaches its spans through
// SpanFromContext, and the flight recorder (recorder.go) retains recent
// traces for the /api/debug/traces endpoints.
package trace

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ID identifies one trace. IDs render as 16 lower-case hex digits — the
// form stamped into log lines, metric exemplars, and the debug API.
type ID uint64

// String implements fmt.Stringer.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// ParseID parses the 16-hex-digit form produced by String. It reports
// false for anything else, including the zero ID (which New never
// issues).
func ParseID(s string) (ID, bool) {
	if len(s) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil || v == 0 {
		return 0, false
	}
	return ID(v), true
}

// idState seeds the splitmix64 ID sequence. Seeding from the wall clock
// makes IDs differ across process restarts; the atomic add makes
// generation lock-free and collision-free within a process.
var idState atomic.Uint64

func init() { idState.Store(uint64(time.Now().UnixNano())) }

// NewID returns a process-unique non-zero trace ID.
func NewID() ID {
	for {
		x := idState.Add(0x9e3779b97f4a7c15) // splitmix64
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return ID(x)
		}
	}
}

// Status classifies how a traced request ended. The tail-sampling policy
// keeps every non-OK trace unconditionally.
type Status int

const (
	// StatusOK marks a request that completed normally.
	StatusOK Status = iota
	// StatusCancelled marks a request abandoned because the client went
	// away (maps from skysr.ErrSearchCancelled / HTTP 503).
	StatusCancelled
	// StatusDeadline marks a request that ran out of its deadline
	// (skysr.ErrDeadlineExceeded / HTTP 504).
	StatusDeadline
	// StatusError marks any other failure (bad request, search error).
	StatusError
	// StatusPanic marks a request whose handler panicked; the serving
	// tier records the panic value before re-raising for recovery.
	StatusPanic
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusCancelled:
		return "cancelled"
	case StatusDeadline:
		return "deadline"
	case StatusError:
		return "error"
	case StatusPanic:
		return "panic"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Attr is one key=value annotation on a span. Values are pre-rendered to
// strings at Set time so finished traces hold no live references into
// engine state.
type Attr struct {
	Key string
	Val string
}

// Span is one timed node of a trace tree. All methods are safe for
// concurrent use — batch requests attach per-query child spans from
// worker goroutines — but a single span's Set/End callers are expected
// to be one goroutine, as in net/http handlers.
type Span struct {
	name  string
	start time.Time
	end   time.Time

	mu       sync.Mutex
	attrs    []Attr
	children []*Span
}

// Name returns the span's stage name.
func (s *Span) Name() string { return s.name }

// Start returns when the span began.
func (s *Span) Start() time.Time { return s.start }

// Duration returns the span's elapsed time; for an unfinished span it
// reports the time elapsed so far.
func (s *Span) Duration() time.Duration {
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// StartSpan creates and returns a running child span. Safe to call from
// multiple goroutines on the same parent.
func (s *Span) StartSpan(name string) *Span {
	child := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// Record attaches an already-finished child span covering [start,
// start+d). The search core uses it to synthesize stage spans from
// Stats after the query completes, keeping the hot loops free of span
// bookkeeping.
func (s *Span) Record(name string, start time.Time, d time.Duration) *Span {
	child := &Span{name: name, start: start, end: start.Add(d)}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// End marks the span finished. Subsequent Ends are no-ops.
func (s *Span) End() {
	if s.end.IsZero() {
		s.end = time.Now()
	}
}

// Set annotates the span with key=value. Values render via %v; durations
// render in their native unit string.
func (s *Span) Set(key string, val any) {
	var rendered string
	switch v := val.(type) {
	case string:
		rendered = v
	case time.Duration:
		rendered = v.String()
	case float64:
		rendered = strconv.FormatFloat(v, 'g', -1, 64)
	case bool:
		rendered = strconv.FormatBool(v)
	case int:
		rendered = strconv.Itoa(v)
	case int64:
		rendered = strconv.FormatInt(v, 10)
	default:
		rendered = fmt.Sprintf("%v", val)
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Val: rendered})
	s.mu.Unlock()
}

// Attrs returns a copy of the span's annotations in Set order.
func (s *Span) Attrs() []Attr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Children returns a copy of the span's child slice in creation order.
func (s *Span) Children() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Trace is one sampled request: an ID, a root span tree, and a terminal
// status. Create with New, finish with Finish, then hand to a Recorder.
type Trace struct {
	id    ID
	name  string
	start time.Time
	root  *Span

	mu     sync.Mutex
	status Status
	errMsg string
	kept   string // tail-sampling reason, set by Recorder.Offer
}

// New creates a running trace whose root span carries the given name
// (typically the endpoint, e.g. "route").
func New(name string) *Trace {
	now := time.Now()
	return &Trace{
		id:    NewID(),
		name:  name,
		start: now,
		root:  &Span{name: name, start: now},
	}
}

// ID returns the trace's identifier.
func (t *Trace) ID() ID { return t.id }

// Name returns the root span name.
func (t *Trace) Name() string { return t.name }

// Start returns when the trace began.
func (t *Trace) Start() time.Time { return t.start }

// Root returns the root span.
func (t *Trace) Root() *Span { return t.root }

// SetStatus records how the request ended. Later non-OK statuses
// overwrite earlier ones; an OK status never overwrites a failure, so
// handlers can set failures as they detect them and finish
// unconditionally.
func (t *Trace) SetStatus(st Status, errMsg string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if st == StatusOK && t.status != StatusOK {
		return
	}
	t.status = st
	t.errMsg = errMsg
}

// Status returns the trace's terminal status.
func (t *Trace) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// Err returns the recorded error message, empty for OK traces.
func (t *Trace) Err() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.errMsg
}

// KeptReason returns why the flight recorder retained this trace
// ("error", "slow", or "sampled"); empty until offered.
func (t *Trace) KeptReason() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.kept
}

func (t *Trace) setKeptReason(reason string) {
	t.mu.Lock()
	t.kept = reason
	t.mu.Unlock()
}

// Finish ends the root span. Idempotent.
func (t *Trace) Finish() { t.root.End() }

// Duration returns the root span's elapsed time.
func (t *Trace) Duration() time.Duration { return t.root.Duration() }

// ctxKey carries a *Trace through a context.
type ctxKey struct{}

// NewContext returns a context carrying t.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// SpanFromContext returns the root span of the trace carried by ctx, or
// nil when the request is untraced. The search core calls it once per
// query and attaches its stage spans beneath.
func SpanFromContext(ctx context.Context) *Span {
	if t := FromContext(ctx); t != nil {
		return t.root
	}
	return nil
}
