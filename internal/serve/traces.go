package serve

// Flight-recorder endpoints: GET /api/debug/traces lists the recorder's
// retained traces newest-first (summaries only), and
// GET /api/debug/traces/{id} returns one full span tree — the query
// "explain". Both bypass the admission queue for the same reason
// /metrics does: the moment an operator needs them is the moment the
// tier is saturated. Payloads are bounded by the recorder's ring
// capacity, so neither endpoint can be made expensive by traffic.

import (
	"net/http"
	"strconv"
	"time"

	"skysr/internal/metrics"
	"skysr/internal/trace"
)

// tracesListResponse is the envelope of GET /api/debug/traces.
type tracesListResponse struct {
	Capacity     int             `json:"capacity"`
	KeptTotal    int64           `json:"kept_total"`
	DroppedTotal int64           `json:"dropped_total"`
	SlowQueryMS  float64         `json:"slow_query_ms"`
	SampleRate   float64         `json:"sample_rate"`
	Traces       []trace.Summary `json:"traces"`
}

func (s *Server) handleTracesList(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		s.writeJSON(w, http.StatusNotFound, map[string]string{"error": "tracing disabled"})
		return
	}
	limit := 0
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": "limit must be a positive integer"})
			return
		}
		limit = n
	}
	traces := s.rec.Traces()
	if limit > 0 && len(traces) > limit {
		traces = traces[:limit]
	}
	resp := tracesListResponse{
		Capacity:     s.rec.Capacity(),
		KeptTotal:    s.rec.KeptTotal(),
		DroppedTotal: s.rec.DroppedTotal(),
		SlowQueryMS:  float64(s.rec.SlowThreshold()) / float64(time.Millisecond),
		SampleRate:   s.rec.SampleRate(),
		Traces:       make([]trace.Summary, 0, len(traces)),
	}
	for _, t := range traces {
		resp.Traces = append(resp.Traces, t.Summary())
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTracesGet(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		s.writeJSON(w, http.StatusNotFound, map[string]string{"error": "tracing disabled"})
		return
	}
	id, ok := trace.ParseID(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad trace id (want 16 hex digits)"})
		return
	}
	t := s.rec.Get(id)
	if t == nil {
		s.writeJSON(w, http.StatusNotFound, map[string]string{"error": "trace not found (evicted or never retained)"})
		return
	}
	s.writeJSON(w, http.StatusOK, t.JSON())
}

// registerTraceMetrics exports the flight recorder's tail-sampling
// counters, sampled at scrape time from the recorder's own atomics.
func (s *Server) registerTraceMetrics(reg *metrics.Registry) {
	reg.CounterFunc("skysr_trace_kept_total",
		"Finished request traces retained by the flight recorder (errors, slow queries, and the sampled tail).",
		func() float64 { return float64(s.rec.KeptTotal()) })
	reg.CounterFunc("skysr_trace_dropped_total",
		"Finished request traces discarded by tail sampling.",
		func() float64 { return float64(s.rec.DroppedTotal()) })
	reg.GaugeFunc("skysr_trace_recorder_len",
		"Traces currently held in the flight recorder's ring.",
		func() float64 { return float64(s.rec.Len()) })
}
