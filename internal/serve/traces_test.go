package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"skysr"
	"skysr/internal/faults"
	"skysr/internal/logx"
	"skysr/internal/metrics"
	"skysr/internal/trace"
)

// tracedServer builds a server that retains every finished trace
// (sample=1), so the list/get assertions are deterministic.
func tracedServer(t *testing.T, cfg Config) (*Server, http.Handler) {
	t.Helper()
	eng, _, _ := skysr.PaperExample()
	if cfg.Logger == nil {
		cfg.Logger = logx.Discard()
	}
	if cfg.TraceSample == 0 {
		cfg.TraceSample = 1
	}
	s := New(eng, cfg)
	return s, s.Handler()
}

const tracedRouteURL = "/api/route?start=0&via=Asian+Restaurant,Arts+%26+Entertainment,Gift+Shop"

func listTraces(t *testing.T, mux http.Handler, query string) tracesListResponse {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/debug/traces"+query, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("traces list status = %d: %s", rec.Code, rec.Body.String())
	}
	var out tracesListResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("traces list body: %v", err)
	}
	return out
}

func TestTracesListAndGet(t *testing.T) {
	_, mux := tracedServer(t, Config{})
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", tracedRouteURL, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("route status = %d: %s", rec.Code, rec.Body.String())
	}

	out := listTraces(t, mux, "")
	if len(out.Traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(out.Traces))
	}
	sum := out.Traces[0]
	if sum.Name != "route" || sum.Status != "ok" {
		t.Errorf("summary = %+v, want name=route status=ok", sum)
	}
	if sum.Spans < 2 {
		t.Errorf("spans = %d, want root + search at least", sum.Spans)
	}
	if out.Capacity != trace.DefaultCapacity || out.KeptTotal != 1 {
		t.Errorf("envelope = %+v", out)
	}

	// Full tree by ID: the root holds a search span that mirrors the
	// query's stages — this is the "explain" payload.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/debug/traces/"+sum.ID, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("trace get status = %d: %s", rec.Code, rec.Body.String())
	}
	var full trace.TraceJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &full); err != nil {
		t.Fatal(err)
	}
	if full.ID != sum.ID {
		t.Errorf("trace id = %q, want %q", full.ID, sum.ID)
	}
	if len(full.Root.Children) != 1 || full.Root.Children[0].Name != "search" {
		t.Fatalf("root children = %+v, want one search span", full.Root.Children)
	}
	search := full.Root.Children[0]
	if search.Attrs["md_runs"] == "" || search.Attrs["popped"] == "" {
		t.Errorf("search span attrs missing counters: %v", search.Attrs)
	}
	var legs int
	for _, c := range search.Children {
		if strings.HasPrefix(c.Name, "leg[") {
			legs++
		}
	}
	if legs != 3 {
		t.Errorf("leg spans = %d, want 3 (one per category)", legs)
	}

	// Unparseable and unknown IDs are client errors, not 500s.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/debug/traces/nothex", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad id status = %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/debug/traces/00000000deadbeef", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown id status = %d, want 404", rec.Code)
	}
}

func TestTracesDisabled(t *testing.T) {
	eng, _, _ := skysr.PaperExample()
	s := New(eng, Config{Logger: logx.Discard(), DisableTracing: true})
	mux := s.Handler()
	for _, path := range []string{"/api/debug/traces", "/api/debug/traces/0123456789abcdef"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusNotFound {
			t.Errorf("%s status = %d, want 404 when tracing is disabled", path, rec.Code)
		}
	}
}

// TestSlowQueryRetainedAndLogged turns sampling off entirely and makes
// every query "slow": tail sampling must still keep it, the slow-query
// warning must carry the trace ID, and the latency histogram must expose
// the trace ID as an exemplar that ParseText accepts.
func TestSlowQueryRetainedAndLogged(t *testing.T) {
	var logBuf bytes.Buffer
	reg := metrics.New()
	_, mux := tracedServer(t, Config{
		Logger:      logx.New(&logBuf, logx.LevelWarn),
		Registry:    reg,
		SlowQuery:   time.Nanosecond, // everything is slow
		TraceSample: -1,              // never sample; only tail rules keep
	})
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", tracedRouteURL, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("route status = %d", rec.Code)
	}

	out := listTraces(t, mux, "")
	if len(out.Traces) != 1 || out.Traces[0].Kept != "slow" {
		t.Fatalf("traces = %+v, want one kept=slow", out.Traces)
	}
	id := out.Traces[0].ID

	logLine := logBuf.String()
	if !strings.Contains(logLine, "slow query") || !strings.Contains(logLine, "trace="+id) {
		t.Errorf("slow-query log line missing or untagged: %q", logLine)
	}

	var scrape bytes.Buffer
	if err := reg.WriteText(&scrape); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(scrape.String(), `# {trace_id="`+id+`"}`) {
		t.Error("latency histogram lacks the slow query's trace_id exemplar")
	}
	if _, err := metrics.ParseText(scrape.Bytes()); err != nil {
		t.Errorf("scrape with exemplars does not parse: %v", err)
	}
}

// TestErrorTracesRetained drives the three failure shapes — timeout,
// handler panic and plain bad request — with sampling off, and checks the
// recorder keeps each with the right status annotation.
func TestErrorTracesRetained(t *testing.T) {
	_, mux := tracedServer(t, Config{SlowQuery: -1, TraceSample: -1})

	// Deadline: slow the search down and give it 1ms.
	restore := faults.Set(faults.MDijkstraRun, func(int64) { time.Sleep(5 * time.Millisecond) })
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", tracedRouteURL+"&timeout_ms=1", nil))
	restore()
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", rec.Code)
	}

	// Panic inside the search core.
	restore = faults.Set(faults.RoutePop, func(int64) { panic("injected fault") })
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", tracedRouteURL, nil))
	restore()
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}

	// Bad request (unknown category).
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/route?start=0&via=No+Such+Category", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}

	// A successful request with sampling off must NOT be retained.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", tracedRouteURL, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}

	out := listTraces(t, mux, "")
	got := map[string]int{}
	for _, sum := range out.Traces {
		got[sum.Status]++
		if sum.Kept != "error" {
			t.Errorf("trace %s kept=%q, want error", sum.ID, sum.Kept)
		}
	}
	want := map[string]int{"deadline": 1, "panic": 1, "error": 1}
	if len(out.Traces) != 3 {
		t.Fatalf("traces = %+v, want exactly the three failures", out.Traces)
	}
	for st, n := range want {
		if got[st] != n {
			t.Errorf("status %q count = %d, want %d (have %v)", st, got[st], n, got)
		}
	}
}

// TestTraceListLimit checks ?limit= truncation and newest-first order.
func TestTraceListLimit(t *testing.T) {
	_, mux := tracedServer(t, Config{})
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", tracedRouteURL, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("route status = %d", rec.Code)
		}
	}
	out := listTraces(t, mux, "?limit=2")
	if len(out.Traces) != 2 {
		t.Fatalf("limited traces = %d, want 2", len(out.Traces))
	}
	if out.KeptTotal != 3 {
		t.Errorf("kept_total = %d, want 3", out.KeptTotal)
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/debug/traces?limit=bogus", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad limit status = %d, want 400", rec.Code)
	}
}

// TestTraceMetricsRegistered checks the recorder's counters land on the
// scrape page alongside the HTTP families.
func TestTraceMetricsRegistered(t *testing.T) {
	reg := metrics.New()
	_, mux := tracedServer(t, Config{Registry: reg})
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", tracedRouteURL, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("route status = %d", rec.Code)
	}
	var scrape bytes.Buffer
	if err := reg.WriteText(&scrape); err != nil {
		t.Fatal(err)
	}
	samples, err := metrics.ParseText(scrape.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if samples["skysr_trace_kept_total"] != 1 {
		t.Errorf("skysr_trace_kept_total = %v, want 1", samples["skysr_trace_kept_total"])
	}
	if samples["skysr_trace_recorder_len"] != 1 {
		t.Errorf("skysr_trace_recorder_len = %v, want 1", samples["skysr_trace_recorder_len"])
	}
}
