// Package serve implements the hardened HTTP serving tier behind the
// skysr-serve command: the §8 prototype endpoints (route, batch, update,
// epoch, survey) wrapped in the robustness machinery a long-lived service
// needs — per-query deadlines threaded into the search core's
// cancellation seam, a bounded admission queue with Retry-After
// backpressure, panic-recovery middleware that converts handler panics
// into JSON 500s, and SIGTERM-style graceful drain with a budget
// (lifecycle.go). The skysr-bench soak experiment drives this package
// directly, with fault injection enabled, to prove the tier recovers
// without goroutine or snapshot leaks.
//
// The tier is observable end to end: GET /metrics exposes the engine's
// search-stage instrumentation and the per-endpoint HTTP series in
// Prometheus text format (metrics.go), every log line goes through a
// leveled structured logger (internal/logx), and Config.EnablePprof
// mounts the net/http/pprof handlers for live profiling.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"skysr"
	"skysr/internal/bench"
	"skysr/internal/logx"
	"skysr/internal/metrics"
	"skysr/internal/trace"
)

// Config tunes a Server. The zero value serves with no per-query timeout
// and concurrency bounded at 2×GOMAXPROCS with a 4× wait queue.
type Config struct {
	// BaseOpts is the serving profile applied to every query (index
	// flags); per-request parameters layer on top of it.
	BaseOpts skysr.SearchOptions
	// QueryTimeout caps the compute time of one route query or batch
	// (the -query-timeout flag). Requests may lower it per call with
	// timeout_ms but never raise it. 0 means no server-side cap.
	QueryTimeout time.Duration
	// MaxConcurrent bounds the heavy requests (route, batch, update)
	// executing at once; 0 means 2×GOMAXPROCS. Each in-flight query holds
	// a pooled graph-sized searcher workspace, so this also bounds
	// transient memory.
	MaxConcurrent int
	// MaxQueue bounds the heavy requests waiting for an execution slot;
	// beyond it requests are rejected with 429 + Retry-After. 0 means
	// 4×MaxConcurrent.
	MaxQueue int
	// RetryAfter is the hint sent with 429/503 rejections; 0 means 1s.
	RetryAfter time.Duration
	// Logger receives the tier's structured log output; nil means the
	// process-wide default (key=value lines on stderr at info level).
	// Tests and embedded runners pass logx.Discard().
	Logger *logx.Logger
	// Registry receives the tier's metrics and the engine's search-stage
	// instrumentation; nil means a fresh private registry. The registry
	// is served on GET /metrics. Note an engine reports to one registry
	// only (the first it is enabled on), so callers constructing several
	// servers over one engine should share one Registry.
	Registry *metrics.Registry
	// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/
	// (the skysr-serve -pprof flag). Off by default: profiling endpoints
	// expose internals and can be heavy, so an operator opts in.
	EnablePprof bool

	// DisableTracing turns off per-request tracing and the flight
	// recorder entirely (the skysr-serve -no-trace flag). Tracing is on
	// by default: span synthesis happens once per query from counters the
	// search already keeps, so its cost sits inside the same ≤1.05×
	// envelope the metrics layer is gated on.
	DisableTracing bool
	// TraceCapacity is the flight recorder's ring size — how many recent
	// traces /api/debug/traces can serve; 0 means trace.DefaultCapacity.
	TraceCapacity int
	// SlowQuery is the latency at or above which a finished request is
	// always retained by the recorder and logged as a structured
	// slow-query warning (the -slow-query flag). 0 means 500ms; negative
	// disables the slow rule.
	SlowQuery time.Duration
	// TraceSample is the probability of retaining a fast successful
	// request (errors, cancellations, panics and slow requests are always
	// retained — tail sampling). 0 means 0.01; negative means never.
	TraceSample float64
}

// Server is the HTTP serving tier over one Engine. Create with New; it is
// safe for concurrent use.
type Server struct {
	eng *skysr.Engine
	cfg Config
	adm *admission
	log *logx.Logger
	reg *metrics.Registry
	hm  *httpMetrics
	rec *trace.Recorder // flight recorder; nil when tracing is disabled

	mu     sync.Mutex
	survey *bench.Survey

	// draining flips once the lifecycle begins shutting down: heavy
	// endpoints reject new work immediately so the drain budget is spent
	// on in-flight requests only.
	draining atomic.Bool

	rejected atomic.Int64 // 429/503 admission rejections
	panics   atomic.Int64 // handler panics converted to 500s
	timeouts atomic.Int64 // searches that hit a deadline (504s)
}

// New returns a Server over eng with the given configuration.
func New(eng *skysr.Engine, cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxConcurrent
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = logx.Default()
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.New()
	}
	s := &Server{
		eng:    eng,
		cfg:    cfg,
		adm:    newAdmission(cfg.MaxConcurrent, cfg.MaxQueue),
		log:    cfg.Logger,
		reg:    cfg.Registry,
		survey: bench.NewSurvey(bench.PaperQuestions()),
	}
	if !cfg.DisableTracing {
		slow := cfg.SlowQuery
		if slow == 0 {
			slow = 500 * time.Millisecond
		} else if slow < 0 {
			slow = 0
		}
		sample := cfg.TraceSample
		if sample == 0 {
			sample = 0.01
		} else if sample < 0 {
			sample = 0
		}
		s.rec = trace.NewRecorder(cfg.TraceCapacity, slow, sample)
	}
	// Engine metrics first, then the HTTP families: a scrape renders
	// families in registration order, so search counters lead the page.
	eng.EnableMetrics(cfg.Registry)
	s.hm = newHTTPMetrics(cfg.Registry)
	s.registerServerMetrics(cfg.Registry)
	if s.rec != nil {
		s.registerTraceMetrics(cfg.Registry)
	}
	return s
}

// Engine returns the engine the server answers from.
func (s *Server) Engine() *skysr.Engine { return s.eng }

// Handler returns the full middleware-wrapped handler: panic recovery
// outermost, then routing, with admission control on the heavy endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.registerRoutes(mux)
	return s.recoverPanics(mux)
}

// registerRoutes wires every endpoint; the tests use it too, so a handler
// cannot ship unregistered or untested. The heavy endpoints — the ones
// that check out searcher workspaces or rebuild snapshots — sit behind
// the admission queue; epoch, categories and survey bypass it so
// monitoring keeps working while the tier is saturated.
func (s *Server) registerRoutes(mux *http.ServeMux) {
	mux.HandleFunc("GET /{$}", s.instrument("index", s.handleIndex))
	mux.HandleFunc("GET /api/categories", s.instrument("categories", s.handleCategories))
	mux.HandleFunc("GET /api/route", s.instrument("route", s.admit(s.handleRoute)))
	mux.HandleFunc("POST /api/batch", s.instrument("batch", s.admit(s.handleBatch)))
	mux.HandleFunc("POST /api/update", s.instrument("update", s.admit(s.handleUpdate)))
	mux.HandleFunc("GET /api/epoch", s.instrument("epoch", s.handleEpoch))
	mux.HandleFunc("POST /api/survey", s.instrument("survey_post", s.handleSurveyPost))
	mux.HandleFunc("GET /api/survey", s.instrument("survey_get", s.handleSurveyGet))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	// Like /metrics, the trace endpoints bypass admission: inspecting why
	// queries are slow must keep working while the tier is saturated.
	mux.HandleFunc("GET /api/debug/traces", s.instrument("traces_list", s.handleTracesList))
	mux.HandleFunc("GET /api/debug/traces/{id}", s.instrument("traces_get", s.handleTracesGet))
	if s.cfg.EnablePprof {
		registerPprof(mux)
	}
}

// recoverPanics converts a handler panic into a JSON 500 instead of
// killing the connection (and, under http.Server, only the connection —
// but under a bare mux in tests, the process). http.ErrAbortHandler is
// re-raised: it is the sanctioned way to abort a response.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			s.panics.Add(1)
			s.log.Error("panic recovered", "method", r.Method, "path", r.URL.Path,
				"panic", p, "stack", string(debug.Stack()))
			// If the handler already wrote a header this write fails;
			// nothing more can be done for that response.
			s.writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "internal server error"})
		}()
		next.ServeHTTP(w, r)
	})
}

// queryContext derives the context a search runs under: the request
// context (so client disconnects and server drain cancel the search),
// bounded by the server's QueryTimeout and the request's own timeout_ms —
// whichever is tighter.
func (s *Server) queryContext(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.cfg.QueryTimeout
	if timeoutMS > 0 {
		rd := time.Duration(timeoutMS) * time.Millisecond
		if d <= 0 || rd < d {
			d = rd
		}
	}
	if d <= 0 {
		return context.WithCancel(r.Context())
	}
	return context.WithTimeout(r.Context(), d)
}

// writeSearchError maps a search error onto HTTP semantics: a deadline is
// the server refusing to spend more compute (504), a cancellation means
// the client went away or the server is draining (503), anything else is
// a bad request. The request's trace (when sampled) is annotated with the
// same classification, so the flight recorder's tail sampling always
// keeps these outcomes.
func (s *Server) writeSearchError(w http.ResponseWriter, r *http.Request, err error) {
	tr := trace.FromContext(r.Context())
	switch {
	case errors.Is(err, skysr.ErrDeadlineExceeded):
		s.timeouts.Add(1)
		if tr != nil {
			tr.SetStatus(trace.StatusDeadline, err.Error())
		}
		s.writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": "query deadline exceeded"})
	case errors.Is(err, skysr.ErrSearchCancelled):
		if tr != nil {
			tr.SetStatus(trace.StatusCancelled, err.Error())
		}
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "query cancelled"})
	default:
		if tr != nil {
			tr.SetStatus(trace.StatusError, err.Error())
		}
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
	}
}

var indexTmpl = template.Must(template.New("index").Parse(`<!doctype html>
<html><head><title>SkySR route suggestion</title></head>
<body>
<h1>SkySR route suggestion — {{.Name}}</h1>
<p>{{.Stats}}</p>
<form action="/api/route" method="GET">
  start vertex: <input name="start" value="0" size="6">
  categories (comma-separated): <input name="via" size="60"
    placeholder="Sushi Restaurant, Art Museum, Gift Shop">
  <input type="submit" value="Find skyline routes">
</form>
<p>Leaf categories: {{range .Leaves}}<code>{{.}}</code> {{end}}</p>
</body></html>`))

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	err := indexTmpl.Execute(w, struct {
		Name   string
		Stats  string
		Leaves []string
	}{s.eng.Name(), s.eng.Stats(), s.eng.LeafCategories()})
	if err != nil {
		logx.FromContext(r.Context()).Error("index render failed", "err", err)
	}
}

func (s *Server) handleCategories(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"all":    s.eng.Categories(),
		"leaves": s.eng.LeafCategories(),
	})
}

type routeResponse struct {
	Algorithm string      `json:"algorithm"`
	ElapsedMS float64     `json:"elapsed_ms"`
	Routes    []routeJSON `json:"routes"`
}

type routeJSON struct {
	Rank     int       `json:"rank"`
	PoIs     []string  `json:"pois"`
	Length   float64   `json:"length"`
	Semantic float64   `json:"semantic"`
	Path     []int32   `json:"path,omitempty"`
	Lons     []float64 `json:"lons,omitempty"`
	Lats     []float64 `json:"lats,omitempty"`
}

// maxTopKPerRequest bounds one request's k: band maintenance is O(k) per
// pruning probe and large k widens the search, so a single request must
// not be able to ask for an effectively unbounded enumeration.
const maxTopKPerRequest = 64

// parseTopK validates an optional k parameter (0 means unset → classic).
func parseTopK(raw string) (int, error) {
	if raw == "" {
		return 0, nil
	}
	k, err := strconv.Atoi(raw)
	if err != nil || k < 1 || k > maxTopKPerRequest {
		return 0, fmt.Errorf("k must be in [1, %d]", maxTopKPerRequest)
	}
	return k, nil
}

// parseDepart validates an optional depart parameter (empty means 0).
func parseDepart(raw string) (float64, error) {
	if raw == "" {
		return 0, nil
	}
	d, err := strconv.ParseFloat(raw, 64)
	if err != nil || d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
		return 0, fmt.Errorf("depart must be a non-negative finite number")
	}
	return d, nil
}

// maxTimeoutMS bounds a request's timeout_ms field; the server-side
// QueryTimeout caps the effective value anyway, this just rejects
// nonsense early.
const maxTimeoutMS = 600_000

// parseTimeoutMS validates an optional timeout_ms parameter (0 = server
// default).
func parseTimeoutMS(raw string) (int, error) {
	if raw == "" {
		return 0, nil
	}
	ms, err := strconv.Atoi(raw)
	if err != nil || ms < 1 || ms > maxTimeoutMS {
		return 0, fmt.Errorf("timeout_ms must be in [1, %d]", maxTimeoutMS)
	}
	return ms, nil
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	qv := r.URL.Query()
	start, err := strconv.Atoi(qv.Get("start"))
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad start vertex"})
		return
	}
	var dest *int
	if destRaw := qv.Get("dest"); destRaw != "" {
		d, err := strconv.Atoi(destRaw)
		if err != nil {
			s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad dest vertex"})
			return
		}
		dest = &d
	}
	k, err := parseTopK(qv.Get("k"))
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	depart, err := parseDepart(qv.Get("depart"))
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	timeoutMS, err := parseTimeoutMS(qv.Get("timeout_ms"))
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	q, err := s.makeQuery(start, strings.Split(qv.Get("via"), ","), dest, qv.Get("unordered") == "1")
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	ctx, cancel := s.queryContext(r, timeoutMS)
	defer cancel()
	opts := s.cfg.BaseOpts
	opts.ExpandPaths = qv.Get("expand") == "1"
	opts.TopK = k
	opts.DepartAt = depart
	opts.Context = ctx
	ans, err := s.eng.SearchWith(q, opts)
	if err != nil {
		s.writeSearchError(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, s.routeResponseOf(ans))
}

// makeQuery validates and assembles one query from request parameters.
func (s *Server) makeQuery(start int, via []string, dest *int, unordered bool) (skysr.Query, error) {
	if start < 0 || start >= s.eng.NumVertices() {
		return skysr.Query{}, fmt.Errorf("bad start vertex")
	}
	q := skysr.Query{Start: int32(start), Unordered: unordered}
	for _, name := range via {
		if trimmed := strings.TrimSpace(name); trimmed != "" {
			q.Via = append(q.Via, skysr.Category(trimmed))
		}
	}
	if len(q.Via) == 0 {
		return skysr.Query{}, fmt.Errorf("via is required")
	}
	if dest != nil {
		if *dest < 0 || *dest >= s.eng.NumVertices() {
			return skysr.Query{}, fmt.Errorf("bad dest vertex")
		}
		q.Destination = int32(*dest)
		q.HasDestination = true
	}
	return q, nil
}

// maxBatch bounds one /api/batch request; production clients should chunk
// larger workloads.
const maxBatch = 4096

type batchQueryJSON struct {
	Start     int      `json:"start"`
	Via       []string `json:"via"`
	Dest      *int     `json:"dest,omitempty"`
	Unordered bool     `json:"unordered,omitempty"`
	// K asks for ranked top-k alternatives for this query (0 = classic
	// skyline), capped at maxTopKPerRequest like the route endpoint.
	K int `json:"k,omitempty"`
	// Depart is this query's departure time at its start vertex (0 =
	// period start); meaningful on time-dependent datasets.
	Depart float64 `json:"depart,omitempty"`
}

type batchRequest struct {
	// Workers bounds the batch's concurrency; 0 means one per CPU.
	Workers int `json:"workers"`
	// TimeoutMS caps the whole batch's compute time in milliseconds,
	// bounded by the server's -query-timeout; 0 means the server default.
	TimeoutMS int              `json:"timeout_ms,omitempty"`
	Queries   []batchQueryJSON `json:"queries"`
}

type batchResponse struct {
	ElapsedMS float64         `json:"elapsed_ms"`
	Answers   []routeResponse `json:"answers"`
}

// maxBatchWorkers bounds one batch's concurrency (each worker holds a
// graph-sized pooled searcher workspace); the default of 0 is clamped to
// it too, so many-core hosts cannot exceed it implicitly.
const maxBatchWorkers = 64

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	// A maxBatch-sized batch fits comfortably in 4 MB; refuse to buffer
	// more than that before the query-count check can even run.
	var body batchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20)).Decode(&body); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeJSON(w, http.StatusRequestEntityTooLarge,
				map[string]string{"error": fmt.Sprintf("body exceeds %d bytes; chunk the batch", tooLarge.Limit)})
			return
		}
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad JSON"})
		return
	}
	if len(body.Queries) == 0 {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": "queries is required"})
		return
	}
	if len(body.Queries) > maxBatch {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("batch exceeds %d queries", maxBatch)})
		return
	}
	if body.Workers < 0 || body.Workers > maxBatchWorkers {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("workers must be in [0, %d]", maxBatchWorkers)})
		return
	}
	if body.TimeoutMS < 0 || body.TimeoutMS > maxTimeoutMS {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("timeout_ms must be in [0, %d]", maxTimeoutMS)})
		return
	}
	workers := body.Workers
	if workers == 0 {
		workers = min(runtime.GOMAXPROCS(0), maxBatchWorkers)
	}
	queries := make([]skysr.Query, len(body.Queries))
	perQuery := make([]skysr.SearchOptions, len(body.Queries))
	for i, bq := range body.Queries {
		q, err := s.makeQuery(bq.Start, bq.Via, bq.Dest, bq.Unordered)
		if err != nil {
			s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("query %d: %v", i, err)})
			return
		}
		// Unlike the route endpoint's string parameter, an absent JSON k
		// decodes to 0, so 0 must stay legal here and means "classic".
		if bq.K < 0 || bq.K > maxTopKPerRequest {
			s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("query %d: k must be in [0, %d] (0 or omitted = classic skyline)", i, maxTopKPerRequest)})
			return
		}
		if bq.Depart < 0 || math.IsNaN(bq.Depart) || math.IsInf(bq.Depart, 0) {
			s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("query %d: depart must be a non-negative finite number", i)})
			return
		}
		queries[i] = q
		perQuery[i] = s.cfg.BaseOpts
		perQuery[i].TopK = bq.K
		perQuery[i].DepartAt = bq.Depart
	}
	ctx, cancel := s.queryContext(r, body.TimeoutMS)
	defer cancel()
	began := time.Now()
	answers, err := s.eng.SearchBatch(queries, skysr.BatchOptions{Workers: workers, PerQuery: perQuery, Context: ctx})
	if err != nil {
		s.writeSearchError(w, r, err)
		return
	}
	resp := batchResponse{ElapsedMS: float64(time.Since(began).Microseconds()) / 1000}
	for _, ans := range answers {
		resp.Answers = append(resp.Answers, s.routeResponseOf(ans))
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// routeResponseOf converts an answer into its JSON form.
func (s *Server) routeResponseOf(ans *skysr.Answer) routeResponse {
	resp := routeResponse{Algorithm: ans.Algorithm.String(), ElapsedMS: float64(ans.Elapsed.Microseconds()) / 1000}
	for _, rt := range ans.Routes {
		rj := routeJSON{Rank: rt.Rank, PoIs: rt.PoINames, Length: rt.LengthScore, Semantic: rt.SemanticScore, Path: rt.Path}
		for _, p := range rt.PoIs {
			lon, lat := s.eng.Position(p)
			rj.Lons = append(rj.Lons, lon)
			rj.Lats = append(rj.Lats, lat)
		}
		resp.Routes = append(resp.Routes, rj)
	}
	return resp
}

// edgeJSON is one edge operand of an update request.
type edgeJSON struct {
	U int32   `json:"u"`
	V int32   `json:"v"`
	W float64 `json:"w,omitempty"`
}

// poiJSON is one PoI operand of an update request.
type poiJSON struct {
	V          int32    `json:"v"`
	Categories []string `json:"categories"`
}

// profileJSON is one time-profile operand of an update request: parallel
// breakpoint times (in [0, period), ascending) and costs.
type profileJSON struct {
	U     int32     `json:"u"`
	V     int32     `json:"v"`
	Times []float64 `json:"times"`
	Costs []float64 `json:"costs"`
}

// updateRequest is the JSON form of one skysr.UpdateBatch.
type updateRequest struct {
	SetWeights    []edgeJSON    `json:"set_weights,omitempty"`
	AddEdges      []edgeJSON    `json:"add_edges,omitempty"`
	RemoveEdges   []edgeJSON    `json:"remove_edges,omitempty"`
	SetProfiles   []profileJSON `json:"set_profiles,omitempty"`
	ClearProfiles []edgeJSON    `json:"clear_profiles,omitempty"`
	AddPoIs       []poiJSON     `json:"add_pois,omitempty"`
	RemovePoIs    []int32       `json:"remove_pois,omitempty"`
	Recategorize  []poiJSON     `json:"recategorize,omitempty"`
}

// updateResponse echoes skysr.UpdateResult.
type updateResponse struct {
	Epoch             int64 `json:"epoch"`
	WeightsChanged    int   `json:"weights_changed"`
	EdgesAdded        int   `json:"edges_added"`
	EdgesRemoved      int   `json:"edges_removed"`
	ProfilesSet       int   `json:"profiles_set"`
	ProfilesCleared   int   `json:"profiles_cleared"`
	PoIsAdded         int   `json:"pois_added"`
	PoIsRemoved       int   `json:"pois_removed"`
	PoIsRecategorized int   `json:"pois_recategorized"`
	GraphRebuilt      bool  `json:"graph_rebuilt"`
	IndexInvalidated  bool  `json:"index_invalidated"`
	RowsCarried       int   `json:"rows_carried"`
	RowsDirtied       int   `json:"rows_dirtied"`
}

// maxUpdateEdits bounds one /api/update request.
const maxUpdateEdits = 4096

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var body updateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20)).Decode(&body); err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad JSON"})
		return
	}
	batch := new(skysr.UpdateBatch)
	for _, e := range body.SetWeights {
		batch.SetEdgeWeight(e.U, e.V, e.W)
	}
	for _, e := range body.AddEdges {
		batch.AddEdge(e.U, e.V, e.W)
	}
	for _, e := range body.RemoveEdges {
		batch.RemoveEdge(e.U, e.V)
	}
	for _, p := range body.SetProfiles {
		batch.SetEdgeProfile(p.U, p.V, p.Times, p.Costs)
	}
	for _, e := range body.ClearProfiles {
		batch.ClearEdgeProfile(e.U, e.V)
	}
	for _, p := range body.AddPoIs {
		batch.AddPoI(p.V, p.Categories...)
	}
	for _, v := range body.RemovePoIs {
		batch.RemovePoI(v)
	}
	for _, p := range body.Recategorize {
		batch.Recategorize(p.V, p.Categories...)
	}
	if batch.Len() == 0 {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": "empty update batch"})
		return
	}
	if batch.Len() > maxUpdateEdits {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("batch exceeds %d edits", maxUpdateEdits)})
		return
	}
	res, err := s.eng.ApplyUpdates(batch)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	logx.FromContext(r.Context()).Info("update applied",
		"epoch", res.Epoch, "edits", batch.Len(),
		"rows_carried", res.RowsCarried, "rows_dirtied", res.RowsDirtied)
	s.writeJSON(w, http.StatusOK, updateResponse{
		Epoch:             res.Epoch,
		WeightsChanged:    res.WeightsChanged,
		EdgesAdded:        res.EdgesAdded,
		EdgesRemoved:      res.EdgesRemoved,
		ProfilesSet:       res.ProfilesSet,
		ProfilesCleared:   res.ProfilesCleared,
		PoIsAdded:         res.PoIsAdded,
		PoIsRemoved:       res.PoIsRemoved,
		PoIsRecategorized: res.PoIsRecategorized,
		GraphRebuilt:      res.GraphRebuilt,
		IndexInvalidated:  res.IndexInvalidated,
		RowsCarried:       res.RowsCarried,
		RowsDirtied:       res.RowsDirtied,
	})
}

func (s *Server) handleEpoch(w http.ResponseWriter, r *http.Request) {
	st := s.eng.CategoryIndexStats()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"epoch":          s.eng.Epoch(),
		"live_snapshots": s.eng.LiveSnapshots(),
		"index": map[string]any{
			"rows_built":    st.RowsBuilt,
			"rows_carried":  st.RowsCarried,
			"rows_repaired": st.RowsRepaired,
			"from_sidecar":  st.FromSidecar,
		},
		"serving": map[string]any{
			"in_flight":      s.adm.inFlightCount(),
			"queue_depth":    s.adm.queueDepth(),
			"max_concurrent": s.adm.maxConcurrent(),
			"max_queue":      s.adm.maxQueue,
			"rejected":       s.rejected.Load(),
			"panics":         s.panics.Load(),
			"timeouts":       s.timeouts.Load(),
			"draining":       s.draining.Load(),
		},
	})
}

type surveyPost struct {
	Question string `json:"question"`
	Option   int    `json:"option"`
}

func (s *Server) handleSurveyPost(w http.ResponseWriter, r *http.Request) {
	var body surveyPost
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad JSON"})
		return
	}
	s.mu.Lock()
	err := s.survey.Record(bench.SurveyResponse{QuestionID: body.Question, Option: body.Option})
	s.mu.Unlock()
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "recorded"})
}

func (s *Server) handleSurveyGet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[string]any{}
	for _, q := range bench.PaperQuestions() {
		n := s.survey.Respondents(q.ID)
		entry := map[string]any{"text": q.Text, "respondents": n}
		if n > 0 {
			ratios, err := s.survey.Ratios(q.ID)
			if err == nil {
				entry["ratios"] = map[string]float64{
					q.Options[0]: ratios[0],
					q.Options[1]: ratios[1],
					q.Options[2]: ratios[2],
				}
			}
		}
		out[q.ID] = entry
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Warn("encode response failed", "err", err)
	}
}
