package serve

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"sync/atomic"

	"skysr/internal/trace"
)

// errSaturated reports that both the execution slots and the wait queue
// are full; the caller maps it to 429 + Retry-After.
var errSaturated = errors.New("serve: admission queue full")

// admission is a bounded two-stage gate for the heavy endpoints: a slot
// channel bounds the requests executing at once, and a counter bounds the
// requests allowed to wait for a slot. Beyond both, requests are rejected
// immediately — a saturated tier answering 429 fast beats one queueing
// unboundedly until every client has timed out anyway.
type admission struct {
	slots    chan struct{}
	maxQueue int
	queued   atomic.Int64
	inFlight atomic.Int64
}

func newAdmission(maxConcurrent, maxQueue int) *admission {
	return &admission{slots: make(chan struct{}, maxConcurrent), maxQueue: maxQueue}
}

func (a *admission) maxConcurrent() int   { return cap(a.slots) }
func (a *admission) inFlightCount() int64 { return a.inFlight.Load() }
func (a *admission) queueDepth() int64    { return a.queued.Load() }

// acquire claims an execution slot, waiting in the bounded queue if none
// is free. It returns errSaturated when the queue is full and the context
// error when the caller gave up (or the server started draining) while
// queued.
func (a *admission) acquire(ctx context.Context) error {
	// Fast path: a free slot means no queueing at all.
	select {
	case a.slots <- struct{}{}:
		a.inFlight.Add(1)
		return nil
	default:
	}
	if a.queued.Add(1) > int64(a.maxQueue) {
		a.queued.Add(-1)
		return errSaturated
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		a.inFlight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns the slot claimed by a successful acquire.
func (a *admission) release() {
	a.inFlight.Add(-1)
	<-a.slots
}

// admit wraps a heavy handler in the admission gate. Rejections carry a
// Retry-After hint: 503 while draining or when the client's context died
// in the queue, 429 when the queue itself is full.
func (s *Server) admit(next http.HandlerFunc) http.HandlerFunc {
	retryAfter := strconv.Itoa(int((s.cfg.RetryAfter).Seconds() + 0.999))
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.rejected.Add(1)
			w.Header().Set("Retry-After", retryAfter)
			s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "server is draining"})
			return
		}
		if err := s.adm.acquire(r.Context()); err != nil {
			s.rejected.Add(1)
			w.Header().Set("Retry-After", retryAfter)
			if errors.Is(err, errSaturated) {
				s.writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": "server overloaded; retry later"})
			} else {
				// The client walked away (or the server began draining)
				// while the request sat in the queue: for the flight
				// recorder that is a cancellation, not a server error.
				if tr := trace.FromContext(r.Context()); tr != nil {
					tr.SetStatus(trace.StatusCancelled, "request abandoned while queued")
				}
				s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "request abandoned while queued"})
			}
			return
		}
		defer s.adm.release()
		next(w, r)
	}
}
