package serve

// HTTP-tier observability: every endpoint is wrapped in an instrument
// middleware that counts requests by response-code class and observes
// wall latency into a per-endpoint histogram (p50/p99 are exported as
// sampled gauges over the same histogram, so a scraper that cannot
// compute histogram_quantile still gets the summary). The admission
// gate, drain flag and failure counters the tier already tracks for
// /api/epoch are exported as gauge/counter functions sampled at scrape
// time — the serving hot path pays one histogram observe and one counter
// increment per request, nothing more. GET /metrics itself bypasses the
// admission queue (monitoring a saturated tier is the whole point) but
// is instrumented like any other endpoint; the opt-in /debug/pprof/*
// handlers are the only uninstrumented routes, since profile pulls are
// operator actions, not traffic.

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"skysr/internal/logx"
	"skysr/internal/metrics"
	"skysr/internal/trace"
)

// httpEndpoints names every instrumented route; registerRoutes and the
// tests both iterate it, so an endpoint cannot ship without its series.
var httpEndpoints = []string{
	"index", "categories", "route", "batch", "update", "epoch",
	"survey_post", "survey_get", "metrics", "traces_list", "traces_get",
}

// tracedEndpoints names the endpoints whose requests get a per-request
// trace: the heavy ones, where "why was this slow" is a real question.
// The cheap read-only endpoints stay untraced — a trace of a map lookup
// is noise in the flight recorder's bounded ring.
var tracedEndpoints = map[string]bool{"route": true, "batch": true, "update": true}

// codeClasses are the response-code classes the request counter is
// partitioned by. 1xx is folded into 2xx: the tier never writes one, and
// a fixed label set keeps /metrics output stable for the CI smoke grep.
var codeClasses = [4]string{"2xx", "3xx", "4xx", "5xx"}

// classOf maps a status code onto its codeClasses index.
func classOf(code int) int {
	switch {
	case code < 300:
		return 0
	case code < 400:
		return 1
	case code < 500:
		return 2
	default:
		return 3
	}
}

// endpointMetrics is one endpoint's instrumentation: a request counter
// per code class and a latency histogram.
type endpointMetrics struct {
	byClass [len(codeClasses)]*metrics.Counter
	latency *metrics.Histogram
}

// httpMetrics holds the per-endpoint series, keyed by the names in
// httpEndpoints.
type httpMetrics struct {
	endpoints map[string]*endpointMetrics
}

// newHTTPMetrics registers the per-endpoint families on reg. QPS is the
// scrape-side rate of skysr_http_requests_total; the server keeps no
// windowed rate state of its own.
func newHTTPMetrics(reg *metrics.Registry) *httpMetrics {
	hm := &httpMetrics{endpoints: make(map[string]*endpointMetrics, len(httpEndpoints))}
	for _, ep := range httpEndpoints {
		em := &endpointMetrics{
			latency: reg.Histogram("skysr_http_request_seconds",
				"HTTP request wall time by endpoint, admission queueing included.",
				metrics.DefTimeBuckets, metrics.L("endpoint", ep)),
		}
		for i, class := range codeClasses {
			em.byClass[i] = reg.Counter("skysr_http_requests_total",
				"HTTP requests served, by endpoint and response-code class (rate() this for QPS).",
				metrics.L("endpoint", ep), metrics.L("code", class))
		}
		lat := em.latency
		reg.GaugeFunc("skysr_http_request_p50_seconds",
			"Estimated median request latency by endpoint, sampled at scrape time from the request histogram.",
			func() float64 { return lat.Quantile(0.5) }, metrics.L("endpoint", ep))
		reg.GaugeFunc("skysr_http_request_p99_seconds",
			"Estimated 99th-percentile request latency by endpoint, sampled at scrape time from the request histogram.",
			func() float64 { return lat.Quantile(0.99) }, metrics.L("endpoint", ep))
		hm.endpoints[ep] = em
	}
	return hm
}

// registerServerMetrics exports the admission gate, drain flag and
// failure counters. The counters stay atomic.Int64 fields on Server —
// /api/epoch and the tests read them directly — and /metrics samples the
// same atomics through counter functions, so the two views cannot drift.
func (s *Server) registerServerMetrics(reg *metrics.Registry) {
	reg.GaugeFunc("skysr_http_in_flight",
		"Heavy requests (route, batch, update) holding an execution slot right now.",
		func() float64 { return float64(s.adm.inFlightCount()) })
	reg.GaugeFunc("skysr_http_queue_depth",
		"Heavy requests waiting for an execution slot right now.",
		func() float64 { return float64(s.adm.queueDepth()) })
	reg.GaugeFunc("skysr_http_max_concurrent",
		"Configured bound on heavy requests executing at once.",
		func() float64 { return float64(s.adm.maxConcurrent()) })
	reg.GaugeFunc("skysr_http_max_queue",
		"Configured bound on heavy requests waiting for a slot.",
		func() float64 { return float64(s.adm.maxQueue) })
	reg.GaugeFunc("skysr_http_draining",
		"1 while the lifecycle drain is rejecting new heavy work, else 0.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	reg.CounterFunc("skysr_http_rejected_total",
		"Admission rejections: 429s from a full queue plus 503s while draining or abandoned in the queue.",
		func() float64 { return float64(s.rejected.Load()) })
	reg.CounterFunc("skysr_http_panics_total",
		"Handler panics converted to JSON 500s by the recovery middleware.",
		func() float64 { return float64(s.panics.Load()) })
	reg.CounterFunc("skysr_http_timeouts_total",
		"Searches that hit their deadline and were answered with 504.",
		func() float64 { return float64(s.timeouts.Load()) })
}

// statusWriter captures the response status code for the instrument
// middleware. A handler that never calls WriteHeader implies 200 on the
// first Write, matching net/http.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// instrument wraps one endpoint's handler (admission gate included, so
// queue wait shows up in the latency histogram and rejections in the 4xx
// and 5xx classes) with request counting, latency observation and a
// request-scoped logger reachable via logx.FromContext. A panicking
// handler is counted by skysr_http_panics_total instead — the recovery
// middleware sits outside this one, and a request that never completed
// has no meaningful latency or status to record.
func (s *Server) instrument(endpoint string, next http.HandlerFunc) http.HandlerFunc {
	em := s.hm.endpoints[endpoint]
	traced := s.rec != nil && tracedEndpoints[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		began := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		rl := s.log.With("endpoint", endpoint)
		ctx := r.Context()
		if traced {
			// Every traced request carries a trace: the span tree is built
			// by the search core, the tail-sampling decision happens only
			// at completion (finishTrace), and the trace ID is stamped into
			// every log line the request emits. The deferred finish runs
			// after the normal-path metrics below, and — unlike them — also
			// on panic: a request that never completed is exactly the kind
			// the flight recorder must keep.
			tr := trace.New(endpoint)
			rl = rl.With("trace", tr.ID().String())
			ctx = trace.NewContext(ctx, tr)
			defer func() {
				if p := recover(); p != nil {
					tr.SetStatus(trace.StatusPanic, fmt.Sprint(p))
					s.finishTrace(tr, em, rl)
					panic(p) // recoverPanics converts it to a JSON 500
				}
				if code := sw.status; code >= 400 && tr.Status() == trace.StatusOK {
					tr.SetStatus(trace.StatusError, http.StatusText(code))
				}
				s.finishTrace(tr, em, rl)
			}()
		}
		next(sw, r.WithContext(logx.NewContext(ctx, rl)))
		code := sw.status
		if code == 0 {
			code = http.StatusOK
		}
		em.byClass[classOf(code)].Inc()
		em.latency.Observe(time.Since(began).Seconds())
		if rl.Enabled(logx.LevelDebug) {
			rl.Debug("request served", "method", r.Method, "path", r.URL.Path,
				"status", code, "elapsed", time.Since(began))
		}
	}
}

// finishTrace completes one request's trace: it seals the root span,
// offers the trace to the flight recorder (tail sampling: errors and slow
// queries always kept, the rest probabilistically), and emits the
// structured slow-query warning with a latency exemplar pinned to the
// bucket the request landed in.
func (s *Server) finishTrace(tr *trace.Trace, em *endpointMetrics, rl *logx.Logger) {
	tr.Finish()
	dur := tr.Duration()
	reason, kept := s.rec.Offer(tr)
	if slow := s.rec.SlowThreshold(); slow > 0 && dur >= slow {
		em.latency.Exemplar(dur.Seconds(), "trace_id", tr.ID().String())
		rl.Warn("slow query", "elapsed", dur, "threshold", slow,
			"status", tr.Status().String(), "kept", kept, "reason", reason)
	}
}

// handleMetrics serves the Prometheus text exposition of the server's
// registry. It bypasses the admission queue: scraping must keep working
// while the tier is saturated or draining.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.reg.ServeHTTP(w, r)
}

// registerPprof mounts the net/http/pprof handlers (opt-in via
// Config.EnablePprof; the skysr-serve -pprof flag). Index dispatches the
// named runtime profiles (heap, goroutine, block, mutex, ...) itself.
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
