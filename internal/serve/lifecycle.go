package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// HTTPConfig tunes the http.Server wrapped around a serve.Server. The
// zero value applies the defaults documented on each field — chosen so an
// unconfigured server is still safe against slow-loris clients and
// abandoned connections.
type HTTPConfig struct {
	// ReadHeaderTimeout bounds reading one request's headers (default 5s).
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds reading one whole request (default 30s).
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one whole response, measured from the
	// end of the headers (default 60s — batch responses can be large).
	WriteTimeout time.Duration
	// IdleTimeout bounds how long a keep-alive connection may sit idle
	// (default 120s).
	IdleTimeout time.Duration
	// DrainTimeout bounds the graceful drain after ctx is cancelled
	// (default 15s): in-flight requests get this long to finish before
	// their searches are cancelled through the deadline seam and the
	// listener is torn down.
	DrainTimeout time.Duration
}

func (hc HTTPConfig) withDefaults() HTTPConfig {
	if hc.ReadHeaderTimeout <= 0 {
		hc.ReadHeaderTimeout = 5 * time.Second
	}
	if hc.ReadTimeout <= 0 {
		hc.ReadTimeout = 30 * time.Second
	}
	if hc.WriteTimeout <= 0 {
		hc.WriteTimeout = 60 * time.Second
	}
	if hc.IdleTimeout <= 0 {
		hc.IdleTimeout = 120 * time.Second
	}
	if hc.DrainTimeout <= 0 {
		hc.DrainTimeout = 15 * time.Second
	}
	return hc
}

// Serve runs the hardened HTTP tier on ln until ctx is cancelled (the
// caller typically derives ctx from SIGTERM/SIGINT via
// signal.NotifyContext), then drains gracefully:
//
//  1. New heavy requests are rejected with 503 + Retry-After.
//  2. In-flight requests get HTTPConfig.DrainTimeout to finish.
//  3. On overrun, the lifecycle context — the BaseContext of every
//     request, and hence the parent of every search's context — is
//     cancelled, so stuck searches unwind through the core's cancellation
//     seam; stragglers get a short grace period, then the server closes.
//
// Serve owns ln and always closes it. It returns nil after a drain
// (graceful or forced) and the listener error otherwise.
func (s *Server) Serve(ctx context.Context, ln net.Listener, hc HTTPConfig) error {
	hc = hc.withDefaults()
	// lifecycle outlives ctx: requests must keep their context through the
	// polite phase of the drain and lose it only when the budget runs out.
	lifecycle, kill := context.WithCancel(context.Background())
	defer kill()
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: hc.ReadHeaderTimeout,
		ReadTimeout:       hc.ReadTimeout,
		WriteTimeout:      hc.WriteTimeout,
		IdleTimeout:       hc.IdleTimeout,
		BaseContext:       func(net.Listener) context.Context { return lifecycle },
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		// The listener failed on its own; nothing is serving anymore.
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), hc.DrainTimeout)
	err := srv.Shutdown(shutdownCtx)
	cancel()
	if err != nil {
		// Polite drain overran its budget: cancel every in-flight request's
		// context so searches unwind through the deadline seam, give the
		// unwound handlers a moment to write their 503s, then tear down.
		kill()
		graceCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		err = srv.Shutdown(graceCtx)
		cancel()
		if err != nil {
			srv.Close()
		}
	}
	// Shutdown makes Serve return http.ErrServerClosed; reap the goroutine.
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
