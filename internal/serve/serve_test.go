package serve

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"skysr"
	"skysr/internal/faults"
	"skysr/internal/logx"
)

func testServer(t *testing.T) (*Server, http.Handler) {
	t.Helper()
	eng, _, _ := skysr.PaperExample()
	// Discard logs: the fault-injection tests would otherwise dump every
	// recovered panic's stack into the test output.
	s := New(eng, Config{Logger: logx.Discard()})
	return s, s.Handler()
}

// leakCheck fails the test if it ends with more goroutines than it
// started with. Registered before the server under test so its cleanup
// runs last (cleanups are LIFO), after the server's own teardown.
func leakCheck(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= base {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d goroutines, started with %d\n%s", runtime.NumGoroutine(), base, buf[:n])
	})
}

func TestIndexPage(t *testing.T) {
	_, mux := testServer(t)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "SkySR") || !strings.Contains(body, "Gift Shop") {
		t.Errorf("index page missing content: %q", body[:min(200, len(body))])
	}
}

func TestCategoriesEndpoint(t *testing.T) {
	_, mux := testServer(t)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/categories", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var out map[string][]string
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out["all"]) != 7 {
		t.Errorf("all categories = %d, want 7 (paper example forest)", len(out["all"]))
	}
	if len(out["leaves"]) == 0 {
		t.Error("no leaves returned")
	}
}

func TestRouteEndpoint(t *testing.T) {
	_, mux := testServer(t)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET",
		"/api/route?start=0&via=Asian+Restaurant,Arts+%26+Entertainment,Gift+Shop&expand=1", nil)
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var out routeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != "BSSR" {
		t.Errorf("algorithm = %q", out.Algorithm)
	}
	if len(out.Routes) != 2 {
		t.Fatalf("routes = %d, want 2 (Table 4)", len(out.Routes))
	}
	// Sorted by length: 10.5 then 13.
	if out.Routes[0].Length != 10.5 || out.Routes[1].Length != 13 {
		t.Errorf("lengths = %v, %v", out.Routes[0].Length, out.Routes[1].Length)
	}
	if len(out.Routes[0].Path) == 0 {
		t.Error("expand=1 should include paths")
	}
	if len(out.Routes[0].Lons) != len(out.Routes[0].PoIs) {
		t.Error("positions missing")
	}
}

func TestRouteEndpointTopK(t *testing.T) {
	_, mux := testServer(t)
	get := func(url string) routeResponse {
		t.Helper()
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
		}
		var out routeResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	base := "/api/route?start=0&via=Asian+Restaurant,Arts+%26+Entertainment,Gift+Shop"
	one := get(base)
	three := get(base + "&k=3")
	if len(three.Routes) < len(one.Routes) {
		t.Fatalf("k=3 returned %d routes, fewer than the skyline's %d", len(three.Routes), len(one.Routes))
	}
	for i, rt := range three.Routes {
		if rt.Rank != i+1 {
			t.Errorf("route %d has rank %d", i, rt.Rank)
		}
		if i > 0 && rt.Length < three.Routes[i-1].Length {
			t.Errorf("routes not length-sorted at %d", i)
		}
	}
	// The k=1 form is the classic answer.
	explicit := get(base + "&k=1")
	if len(explicit.Routes) != len(one.Routes) {
		t.Errorf("k=1 returned %d routes, want %d", len(explicit.Routes), len(one.Routes))
	}
	// Out-of-range k values are rejected.
	for _, bad := range []string{"&k=0", "&k=-2", "&k=65", "&k=zz"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", base+bad, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("k%s status = %d, want 400", bad, rec.Code)
		}
	}
}

func TestRouteEndpointWithDestination(t *testing.T) {
	_, mux := testServer(t)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET",
		"/api/route?start=0&dest=0&via=Asian+Restaurant,Arts+%26+Entertainment,Gift+Shop", nil)
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var out routeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Routes) == 0 {
		t.Fatal("no routes with destination")
	}
}

func TestRouteEndpointErrors(t *testing.T) {
	_, mux := testServer(t)
	cases := map[string]string{
		"bad start":        "/api/route?start=xx&via=Gift+Shop",
		"start range":      "/api/route?start=9999&via=Gift+Shop",
		"missing via":      "/api/route?start=0",
		"unknown category": "/api/route?start=0&via=Nonexistent",
		"bad dest":         "/api/route?start=0&via=Gift+Shop&dest=zz",
		"bad timeout":      "/api/route?start=0&via=Gift+Shop&timeout_ms=0",
		"huge timeout":     "/api/route?start=0&via=Gift+Shop&timeout_ms=99999999",
	}
	for name, url := range cases {
		t.Run(name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			mux.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
			if rec.Code != http.StatusBadRequest {
				t.Errorf("status = %d, want 400", rec.Code)
			}
		})
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, mux := testServer(t)
	body := `{"workers":4,"queries":[
		{"start":0,"via":["Asian Restaurant","Arts & Entertainment","Gift Shop"]},
		{"start":0,"via":["Gift Shop"]},
		{"start":0,"via":["Asian Restaurant","Arts & Entertainment","Gift Shop"]}]}`
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/api/batch", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var out batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Answers) != 3 {
		t.Fatalf("answers = %d, want 3", len(out.Answers))
	}
	// Answers arrive in query order: 1st and 3rd are the Table 4 query.
	for _, i := range []int{0, 2} {
		if len(out.Answers[i].Routes) != 2 ||
			out.Answers[i].Routes[0].Length != 10.5 || out.Answers[i].Routes[1].Length != 13 {
			t.Errorf("answer %d = %+v, want the Table 4 skyline", i, out.Answers[i].Routes)
		}
	}
	if len(out.Answers[1].Routes) == 0 {
		t.Error("single-category query returned no routes")
	}
}

func TestBatchEndpointTopK(t *testing.T) {
	_, mux := testServer(t)
	body := `{"queries":[
		{"start":0,"via":["Asian Restaurant","Arts & Entertainment","Gift Shop"]},
		{"start":0,"via":["Asian Restaurant","Arts & Entertainment","Gift Shop"],"k":4}]}`
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/api/batch", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var out batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Answers) != 2 {
		t.Fatalf("answers = %d, want 2", len(out.Answers))
	}
	if len(out.Answers[1].Routes) < len(out.Answers[0].Routes) {
		t.Errorf("k=4 answer has %d routes, fewer than the skyline's %d",
			len(out.Answers[1].Routes), len(out.Answers[0].Routes))
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/api/batch",
		strings.NewReader(`{"queries":[{"start":0,"via":["Gift Shop"],"k":100}]}`)))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("oversized k status = %d, want 400", rec.Code)
	}
}

func TestBatchEndpointErrors(t *testing.T) {
	_, mux := testServer(t)
	cases := map[string]string{
		"bad JSON":         `notjson`,
		"no queries":       `{"queries":[]}`,
		"bad start":        `{"queries":[{"start":9999,"via":["Gift Shop"]}]}`,
		"missing via":      `{"queries":[{"start":0}]}`,
		"unknown category": `{"queries":[{"start":0,"via":["Nonexistent"]}]}`,
		"bad dest":         `{"queries":[{"start":0,"via":["Gift Shop"],"dest":-2}]}`,
		"bad workers":      `{"workers":1000,"queries":[{"start":0,"via":["Gift Shop"]}]}`,
		"bad timeout":      `{"timeout_ms":-1,"queries":[{"start":0,"via":["Gift Shop"]}]}`,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			mux.ServeHTTP(rec, httptest.NewRequest("POST", "/api/batch", strings.NewReader(body)))
			if rec.Code != http.StatusBadRequest {
				t.Errorf("status = %d, want 400: %s", rec.Code, rec.Body.String())
			}
		})
	}
}

func TestBatchEndpointBodyTooLarge(t *testing.T) {
	_, mux := testServer(t)
	big := `{"queries":[{"start":0,"via":["` + strings.Repeat("x", 4<<20) + `"]}]}`
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/api/batch", strings.NewReader(big)))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "chunk the batch") {
		t.Errorf("body = %s, want an oversized-body message", rec.Body.String())
	}
}

func TestSurveyEndpoints(t *testing.T) {
	_, mux := testServer(t)

	// Empty survey renders with zero respondents.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/survey", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}

	// Record two responses.
	for _, body := range []string{
		`{"question":"Q1","option":1}`,
		`{"question":"Q1","option":2}`,
	} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("POST", "/api/survey", strings.NewReader(body)))
		if rec.Code != http.StatusOK {
			t.Fatalf("POST status = %d: %s", rec.Code, rec.Body.String())
		}
	}

	// Bad posts fail.
	for _, body := range []string{`{"question":"Q1","option":7}`, `{"question":"QX","option":1}`, `notjson`} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("POST", "/api/survey", strings.NewReader(body)))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("POST %q status = %d, want 400", body, rec.Code)
		}
	}

	// Ratios reflect the two recorded answers.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/survey", nil))
	var out map[string]struct {
		Respondents int                `json:"respondents"`
		Ratios      map[string]float64 `json:"ratios"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out["Q1"].Respondents != 2 {
		t.Errorf("Q1 respondents = %d, want 2", out["Q1"].Respondents)
	}
	if out["Q1"].Ratios["I love it"] != 0.5 {
		t.Errorf("Q1 ratios = %v", out["Q1"].Ratios)
	}
}

func TestUpdateEndpoint(t *testing.T) {
	_, mux := testServer(t)

	// The paper example's Table 4 skyline before any update.
	query := func() routeResponse {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET",
			"/api/route?start=0&via=Asian+Restaurant,Arts+%26+Entertainment,Gift+Shop", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("route status = %d: %s", rec.Code, rec.Body.String())
		}
		var out routeResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	before := query()
	if len(before.Routes) != 2 || before.Routes[0].Length != 10.5 {
		t.Fatalf("pre-update skyline = %+v, want the Table 4 shape", before.Routes)
	}

	// Raise one road weight; the server keeps serving on the new epoch.
	rec := httptest.NewRecorder()
	body := `{"set_weights":[{"u":0,"v":1,"w":100}]}`
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/api/update", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("update status = %d: %s", rec.Code, rec.Body.String())
	}
	var res updateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 || res.WeightsChanged != 1 {
		t.Fatalf("update response = %+v, want epoch 1 with one weight change", res)
	}

	// The epoch endpoint reflects the new version.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/epoch", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("epoch status = %d", rec.Code)
	}
	var epochOut struct {
		Epoch int64 `json:"epoch"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &epochOut); err != nil {
		t.Fatal(err)
	}
	if epochOut.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", epochOut.Epoch)
	}
}

func TestUpdateEndpointErrors(t *testing.T) {
	_, mux := testServer(t)
	cases := map[string]string{
		"bad JSON":         `notjson`,
		"empty batch":      `{}`,
		"unknown vertex":   `{"set_weights":[{"u":0,"v":9999,"w":1}]}`,
		"missing edge":     `{"remove_edges":[{"u":0,"v":0}]}`,
		"unknown category": `{"recategorize":[{"v":6,"categories":["No Such Place"]}]}`,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			mux.ServeHTTP(rec, httptest.NewRequest("POST", "/api/update", strings.NewReader(body)))
			if rec.Code != http.StatusBadRequest {
				t.Errorf("status = %d, want 400: %s", rec.Code, rec.Body.String())
			}
		})
	}
}

func TestTimeDependentEndpoints(t *testing.T) {
	s, mux := testServer(t)

	// Attach a varying profile to a real edge via the update endpoint.
	ts, ws := s.eng.Neighbors(0)
	if len(ts) == 0 {
		t.Fatal("vertex 0 has no edges")
	}
	u, v, w := int32(0), ts[0], ws[0]
	period := s.eng.TimePeriod()
	body := strings.NewReader(
		`{"set_profiles":[{"u":` + itoa(u) + `,"v":` + itoa(v) +
			`,"times":[0,` + ftoa(period/2) + `],"costs":[` + ftoa(w) + `,` + ftoa(3*w) + `]}]}`)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/api/update", body))
	if rec.Code != http.StatusOK {
		t.Fatalf("set_profiles status = %d: %s", rec.Code, rec.Body.String())
	}
	var up map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &up); err != nil {
		t.Fatal(err)
	}
	if up["profiles_set"].(float64) != 1 {
		t.Fatalf("profiles_set = %v", up["profiles_set"])
	}
	if !s.eng.HasTimeProfiles() {
		t.Fatal("engine has no profiles after update")
	}

	// depart flows through the route endpoint.
	for _, raw := range []string{"", "&depart=0", "&depart=" + ftoa(period/2)} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET",
			"/api/route?start=0&via=Asian+Restaurant,Gift+Shop"+raw, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("route depart %q status = %d: %s", raw, rec.Code, rec.Body.String())
		}
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/route?start=0&via=Gift+Shop&depart=-3", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("negative depart accepted: %d", rec.Code)
	}

	// Per-query depart in a batch.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/api/batch", strings.NewReader(
		`{"queries":[{"start":0,"via":["Gift Shop"]},{"start":0,"via":["Gift Shop"],"depart":`+ftoa(period/2)+`}]}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("batch depart status = %d: %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/api/batch", strings.NewReader(
		`{"queries":[{"start":0,"via":["Gift Shop"],"depart":-1}]}`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("batch negative depart accepted: %d", rec.Code)
	}

	// Invalid profiles are rejected; clear_profiles detaches.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/api/update", strings.NewReader(
		`{"set_profiles":[{"u":`+itoa(u)+`,"v":`+itoa(v)+`,"times":[5,1],"costs":[1,1]}]}`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unsorted profile accepted: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/api/update", strings.NewReader(
		`{"clear_profiles":[{"u":`+itoa(u)+`,"v":`+itoa(v)+`}]}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("clear_profiles status = %d: %s", rec.Code, rec.Body.String())
	}
	if s.eng.HasTimeProfiles() {
		t.Fatal("profile survived clear_profiles")
	}
}

func itoa(v int32) string { return strconv.Itoa(int(v)) }

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// TestQueryTimeout injects a per-m-Dijkstra-run delay and asks for a 1ms
// budget: the first checkpoint after the delay observes the expired
// deadline, the search unwinds through the cancellation seam, and the
// handler answers 504. The engine must stay fully usable afterwards.
func TestQueryTimeout(t *testing.T) {
	leakCheck(t)
	s, mux := testServer(t)
	restore := faults.Set(faults.MDijkstraRun, func(int64) { time.Sleep(5 * time.Millisecond) })
	defer restore()

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET",
		"/api/route?start=0&via=Asian+Restaurant,Arts+%26+Entertainment,Gift+Shop&timeout_ms=1", nil))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", rec.Code, rec.Body.String())
	}
	if n := s.timeouts.Load(); n != 1 {
		t.Errorf("timeouts counter = %d, want 1", n)
	}

	// Batch-level timeout_ms behaves the same.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/api/batch", strings.NewReader(
		`{"timeout_ms":1,"queries":[{"start":0,"via":["Asian Restaurant","Arts & Entertainment","Gift Shop"]}]}`)))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("batch status = %d, want 504: %s", rec.Code, rec.Body.String())
	}

	// With the fault gone, the same request succeeds and snapshots are clean.
	restore()
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET",
		"/api/route?start=0&via=Asian+Restaurant,Arts+%26+Entertainment,Gift+Shop", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-timeout status = %d: %s", rec.Code, rec.Body.String())
	}
	if n := s.eng.LiveSnapshots(); n != 1 {
		t.Errorf("live snapshots = %d, want 1 (timed-out queries must release their pins)", n)
	}
}

// TestPanicRecovery injects a panic into the search core and checks the
// middleware converts it into a JSON 500 without crashing the server or
// leaking the query's snapshot pin.
func TestPanicRecovery(t *testing.T) {
	leakCheck(t)
	s, mux := testServer(t)
	restore := faults.Set(faults.RoutePop, func(int64) { panic("injected fault") })
	defer restore()

	// A single-category query finishes in the initial expansion without
	// ever popping, so the multi-category query is the one that reaches
	// the RoutePop site.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET",
		"/api/route?start=0&via=Asian+Restaurant,Arts+%26+Entertainment,Gift+Shop", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500: %s", rec.Code, rec.Body.String())
	}
	var out map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("500 body is not JSON: %v", err)
	}
	if n := s.panics.Load(); n != 1 {
		t.Errorf("panics counter = %d, want 1", n)
	}

	// Batch workers run on their own goroutines where middleware cannot
	// reach; SearchBatch itself converts the panic into a 400-path error.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/api/batch",
		strings.NewReader(`{"queries":[{"start":0,"via":["Asian Restaurant","Arts & Entertainment","Gift Shop"]}]}`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("batch status = %d, want 400: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "panicked") {
		t.Errorf("batch error body = %s, want a panic message", rec.Body.String())
	}

	restore()
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/route?start=0&via=Gift+Shop", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-panic status = %d: %s", rec.Code, rec.Body.String())
	}
	if n := s.eng.LiveSnapshots(); n != 1 {
		t.Errorf("live snapshots = %d, want 1 (panicked queries must release their pins)", n)
	}
}

// TestAdmissionSaturation fills the single execution slot and the
// single-deep queue, then checks the next request is rejected immediately
// with 429 + Retry-After rather than queueing unboundedly.
func TestAdmissionSaturation(t *testing.T) {
	leakCheck(t)
	eng, _, _ := skysr.PaperExample()
	s := New(eng, Config{MaxConcurrent: 1, MaxQueue: 1})
	h := s.Handler()

	gate := make(chan struct{})
	entered := make(chan struct{}, 4)
	restore := faults.Set(faults.RoutePop, func(n int64) {
		if n == 1 {
			entered <- struct{}{}
			<-gate
		}
	})
	defer restore()
	defer close(gate)

	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := range codes {
		if i == 1 {
			<-entered // the first request holds the slot before the second queues
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := httptest.NewRecorder()
			// The multi-category query reaches the RoutePop site (a
			// single-category one finishes in the initial expansion).
			h.ServeHTTP(rec, httptest.NewRequest("GET",
				"/api/route?start=0&via=Asian+Restaurant,Arts+%26+Entertainment,Gift+Shop", nil))
			codes[i] = rec.Code
		}(i)
	}

	// Wait for the second request to be counted as queued.
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.queueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("second request never queued (depth = %d)", s.adm.queueDepth())
		}
		time.Sleep(time.Millisecond)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/route?start=0&via=Gift+Shop", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	if n := s.rejected.Load(); n != 1 {
		t.Errorf("rejected counter = %d, want 1", n)
	}

	// The epoch endpoint bypasses admission and reports the saturation.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/epoch", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("epoch status under load = %d", rec.Code)
	}
	var epochOut struct {
		Serving struct {
			InFlight      int64 `json:"in_flight"`
			QueueDepth    int64 `json:"queue_depth"`
			MaxConcurrent int   `json:"max_concurrent"`
			MaxQueue      int   `json:"max_queue"`
			Rejected      int64 `json:"rejected"`
		} `json:"serving"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &epochOut); err != nil {
		t.Fatal(err)
	}
	sv := epochOut.Serving
	if sv.InFlight != 1 || sv.QueueDepth != 1 || sv.MaxConcurrent != 1 || sv.MaxQueue != 1 || sv.Rejected != 1 {
		t.Errorf("serving block = %+v, want in_flight 1, queue_depth 1, caps 1/1, rejected 1", sv)
	}

	// Release the gate: both held requests complete successfully.
	close(entered)
	gate <- struct{}{} // wake the first request
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Errorf("request %d status = %d, want 200", i, code)
		}
	}
}

// TestDrainingRejectsHeavyEndpoints flips the draining flag and checks
// heavy endpoints answer 503 + Retry-After while monitoring stays up.
func TestDrainingRejectsHeavyEndpoints(t *testing.T) {
	s, mux := testServer(t)
	s.draining.Store(true)
	for _, req := range []*http.Request{
		httptest.NewRequest("GET", "/api/route?start=0&via=Gift+Shop", nil),
		httptest.NewRequest("POST", "/api/batch", strings.NewReader(`{"queries":[{"start":0,"via":["Gift Shop"]}]}`)),
		httptest.NewRequest("POST", "/api/update", strings.NewReader(`{"set_weights":[{"u":0,"v":1,"w":2}]}`)),
	} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("%s %s status = %d, want 503", req.Method, req.URL.Path, rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Errorf("%s %s missing Retry-After", req.Method, req.URL.Path)
		}
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/epoch", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("epoch status while draining = %d, want 200", rec.Code)
	}
	var out struct {
		Serving struct {
			Draining bool `json:"draining"`
		} `json:"serving"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if !out.Serving.Draining {
		t.Error("epoch endpoint does not report draining")
	}
}

// TestGracefulDrain runs the full lifecycle on a real listener: serve a
// request, cancel the lifecycle context, and check Serve drains and
// returns without leaking its goroutines.
func TestGracefulDrain(t *testing.T) {
	leakCheck(t)
	eng, _, _ := skysr.PaperExample()
	s := New(eng, Config{QueryTimeout: 5 * time.Second})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln, HTTPConfig{DrainTimeout: 5 * time.Second}) }()

	url := "http://" + ln.Addr().String() + "/api/route?start=0&via=Gift+Shop"
	resp, err := http.Get(url)
	if err != nil {
		cancel()
		t.Fatalf("request against live server: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live status = %d", resp.StatusCode)
	}
	http.DefaultClient.CloseIdleConnections()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after drain, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	if !s.draining.Load() {
		t.Error("server not marked draining after shutdown")
	}
	if n := s.eng.LiveSnapshots(); n != 1 {
		t.Errorf("live snapshots after drain = %d, want 1", n)
	}
}
