package serve

// Tests for the HTTP-tier observability: the /metrics endpoint itself,
// counter exactness over the HTTP path, concurrent scraping while the
// tier serves a mixed search/batch/update storm (run under -race in CI),
// the scrape-during-drain guarantee, and the opt-in pprof mount. Every
// storm-shaped test carries the goroutine-leak guard.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"skysr"
	"skysr/internal/bench"
	"skysr/internal/logx"
	"skysr/internal/metrics"
)

// scrape pulls GET /metrics through the mux and parses the exposition;
// every call asserts the page is valid Prometheus text carrying all the
// required families.
func scrape(t *testing.T, mux http.Handler) map[string]float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	samples, err := metrics.ParseText(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, rec.Body.String())
	}
	if missing := bench.MissingMetrics(samples); len(missing) > 0 {
		t.Fatalf("/metrics missing families: %s", strings.Join(missing, ", "))
	}
	return samples
}

const tableFourQuery = "/api/route?start=0&via=Asian+Restaurant,Arts+%26+Entertainment,Gift+Shop"

// TestMetricsEndpoint checks the scrape itself and counter exactness for
// a known request mix: N routes move the engine search counter, the
// route request counter and the route latency histogram by exactly N.
func TestMetricsEndpoint(t *testing.T) {
	_, mux := testServer(t)
	before := scrape(t, mux)

	const n = 3
	for i := 0; i < n; i++ {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", tableFourQuery, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("route status = %d", rec.Code)
		}
	}
	// One rejected request lands in the 4xx class, not in 2xx.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/route?start=0&via=Nonexistent", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad route status = %d", rec.Code)
	}

	after := scrape(t, mux)
	delta := func(key string) float64 { return after[key] - before[key] }
	if d := delta("skysr_search_total"); d != n {
		t.Errorf("skysr_search_total moved %v for %d searches", d, n)
	}
	if d := delta(`skysr_http_requests_total{endpoint="route",code="2xx"}`); d != n {
		t.Errorf("route 2xx counter moved %v for %d requests", d, n)
	}
	if d := delta(`skysr_http_requests_total{endpoint="route",code="4xx"}`); d != 1 {
		t.Errorf("route 4xx counter moved %v for 1 bad request", d)
	}
	if d := delta(`skysr_http_request_seconds_count{endpoint="route"}`); d != n+1 {
		t.Errorf("route latency histogram observed %v requests, want %d", d, n+1)
	}
	// The scrape is itself instrumented: the before-scrape plus the
	// after-scrape's own in-progress request leave at least one count.
	if after[`skysr_http_requests_total{endpoint="metrics",code="2xx"}`] < 1 {
		t.Error("the metrics endpoint does not count its own scrapes")
	}
}

// TestMetricsEpochGauge pins the epoch export: an applied update moves
// skysr_epoch in the next scrape, so scrape-side epoch lag is computable.
func TestMetricsEpochGauge(t *testing.T) {
	_, mux := testServer(t)
	before := scrape(t, mux)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/api/update",
		strings.NewReader(`{"set_weights":[{"u":0,"v":1,"w":9}]}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("update status = %d: %s", rec.Code, rec.Body.String())
	}

	after := scrape(t, mux)
	if after["skysr_epoch"] != before["skysr_epoch"]+1 {
		t.Errorf("skysr_epoch = %v after one update, was %v", after["skysr_epoch"], before["skysr_epoch"])
	}
	if d := after[`skysr_http_requests_total{endpoint="update",code="2xx"}`] -
		before[`skysr_http_requests_total{endpoint="update",code="2xx"}`]; d != 1 {
		t.Errorf("update 2xx counter moved %v for 1 update", d)
	}
}

// TestMetricsConcurrentStorm hammers route, batch and update while a
// scraper loop pulls /metrics — the -race run proves the exposition
// path is safe against the serving hot path, and the final deltas prove
// exactness holds under concurrency: every 200 route is one search,
// every 200 batch is two, updates are none.
func TestMetricsConcurrentStorm(t *testing.T) {
	leakCheck(t)
	_, mux := testServer(t)
	before := scrape(t, mux)

	const (
		workers    = 6
		opsPerKind = 30
	)
	batchBody := `{"queries":[
		{"start":0,"via":["Gift Shop"]},
		{"start":0,"via":["Asian Restaurant","Arts & Entertainment","Gift Shop"]}]}`

	var routeOK, batchOK, updateOK atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerKind; i++ {
				rec := httptest.NewRecorder()
				mux.ServeHTTP(rec, httptest.NewRequest("GET", tableFourQuery, nil))
				if rec.Code == http.StatusOK {
					routeOK.Add(1)
				}
				rec = httptest.NewRecorder()
				mux.ServeHTTP(rec, httptest.NewRequest("POST", "/api/batch", strings.NewReader(batchBody)))
				if rec.Code == http.StatusOK {
					batchOK.Add(1)
				}
				// Flip one road weight back and forth; every update is
				// valid, so concurrent epochs only ever move forward.
				weight := "10"
				if (w+i)%2 == 1 {
					weight = "12"
				}
				rec = httptest.NewRecorder()
				mux.ServeHTTP(rec, httptest.NewRequest("POST", "/api/update",
					strings.NewReader(`{"set_weights":[{"u":0,"v":1,"w":`+weight+`}]}`)))
				if rec.Code == http.StatusOK {
					updateOK.Add(1)
				}
			}
		}()
	}

	// The scraper: pull /metrics continuously until the storm ends. Every
	// pull must parse and carry the full family set (scrape() fatals
	// otherwise — t.Fatalf in a goroutine is unsafe, so collect and check).
	stop := make(chan struct{})
	scrapes := 0
	var scraperWG sync.WaitGroup
	var scrapeErr error
	scraperWG.Add(1)
	go func() {
		defer scraperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec := httptest.NewRecorder()
			mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
			samples, err := metrics.ParseText(rec.Body.Bytes())
			if err == nil {
				if missing := bench.MissingMetrics(samples); len(missing) > 0 {
					err = fmt.Errorf("missing families: %s", strings.Join(missing, ", "))
				}
			}
			if rec.Code != http.StatusOK || err != nil {
				scrapeErr = fmt.Errorf("status %d: %w", rec.Code, err)
				return
			}
			scrapes++
		}
	}()

	wg.Wait()
	close(stop)
	scraperWG.Wait()
	if scrapeErr != nil {
		t.Fatalf("mid-storm scrape failed: %v", scrapeErr)
	}
	if scrapes == 0 {
		t.Fatal("the scraper never completed a pull during the storm")
	}
	if updateOK.Load() == 0 {
		t.Fatal("no update ever succeeded")
	}

	after := scrape(t, mux)
	wantSearches := float64(routeOK.Load() + 2*batchOK.Load())
	if d := after["skysr_search_total"] - before["skysr_search_total"]; d != wantSearches {
		t.Errorf("skysr_search_total moved %v, want exactly %v (%d routes + 2×%d batches)",
			d, wantSearches, routeOK.Load(), batchOK.Load())
	}
	if d := after[`skysr_http_requests_total{endpoint="route",code="2xx"}`] -
		before[`skysr_http_requests_total{endpoint="route",code="2xx"}`]; d != float64(routeOK.Load()) {
		t.Errorf("route 2xx counter moved %v for %d requests", d, routeOK.Load())
	}
	if d := after[`skysr_http_requests_total{endpoint="update",code="2xx"}`] -
		before[`skysr_http_requests_total{endpoint="update",code="2xx"}`]; d != float64(updateOK.Load()) {
		t.Errorf("update 2xx counter moved %v for %d updates", d, updateOK.Load())
	}
	if after["skysr_epoch"] != before["skysr_epoch"]+float64(updateOK.Load()) {
		t.Errorf("skysr_epoch = %v after %d updates from %v",
			after["skysr_epoch"], updateOK.Load(), before["skysr_epoch"])
	}
}

// TestMetricsScrapeWhileDraining pins the monitoring-over-drain contract:
// with the drain flag up, heavy endpoints answer 503 but /metrics keeps
// serving, reports draining=1, and agrees with the server's own
// rejection counter.
func TestMetricsScrapeWhileDraining(t *testing.T) {
	leakCheck(t)
	s, mux := testServer(t)
	s.draining.Store(true)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", tableFourQuery, nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("route while draining = %d, want 503", rec.Code)
	}

	samples := scrape(t, mux)
	if samples["skysr_http_draining"] != 1 {
		t.Errorf("skysr_http_draining = %v while draining", samples["skysr_http_draining"])
	}
	if got, want := samples["skysr_http_rejected_total"], float64(s.rejected.Load()); got != want {
		t.Errorf("skysr_http_rejected_total = %v, server counted %v", got, want)
	}
	if samples[`skysr_http_requests_total{endpoint="route",code="5xx"}`] != 1 {
		t.Errorf("route 5xx = %v, want 1 (the drained request)",
			samples[`skysr_http_requests_total{endpoint="route",code="5xx"}`])
	}

	s.draining.Store(false)
	if got := scrape(t, mux)["skysr_http_draining"]; got != 0 {
		t.Errorf("skysr_http_draining = %v after drain flag cleared", got)
	}
}

// TestMetricsSharedAtomicsMatchEpochEndpoint pins the no-drift property:
// /api/epoch and /metrics sample the same atomics, so their counts agree.
func TestMetricsSharedAtomicsMatchEpochEndpoint(t *testing.T) {
	s, mux := testServer(t)
	s.rejected.Add(3)
	s.timeouts.Add(2)
	s.panics.Add(1)

	samples := scrape(t, mux)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/epoch", nil))
	var out struct {
		Serving struct {
			Rejected int64 `json:"rejected"`
			Timeouts int64 `json:"timeouts"`
			Panics   int64 `json:"panics"`
		} `json:"serving"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	ep := out.Serving
	if samples["skysr_http_rejected_total"] != float64(ep.Rejected) ||
		samples["skysr_http_timeouts_total"] != float64(ep.Timeouts) ||
		samples["skysr_http_panics_total"] != float64(ep.Panics) {
		t.Errorf("/metrics (%v, %v, %v) disagrees with /api/epoch (%d, %d, %d)",
			samples["skysr_http_rejected_total"], samples["skysr_http_timeouts_total"],
			samples["skysr_http_panics_total"], ep.Rejected, ep.Timeouts, ep.Panics)
	}
}

// TestPprofDisabledByDefault: the profiling surface must be opt-in.
func TestPprofDisabledByDefault(t *testing.T) {
	_, mux := testServer(t)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("pprof index without EnablePprof = %d, want 404", rec.Code)
	}
}

// TestPprofEnabled mounts the handlers and hits the fast ones (never
// /debug/pprof/profile — it blocks for its sampling window). The leak
// guard extends to the pprof surface.
func TestPprofEnabled(t *testing.T) {
	leakCheck(t)
	eng, _, _ := skysr.PaperExample()
	s := New(eng, Config{Logger: logx.Discard(), EnablePprof: true})
	mux := s.Handler()

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, rec.Code)
		}
	}
	// The pprof mount does not displace /metrics.
	scrape(t, mux)
}
