package logx

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// capture returns a logger writing into buf with a frozen clock.
func capture(level Level) (*Logger, *strings.Builder) {
	var buf strings.Builder
	l := New(&buf, level)
	l.s.now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	return l, &buf
}

func TestLineFormat(t *testing.T) {
	l, buf := capture(LevelInfo)
	l.Info("update applied", "epoch", 3, "edits", int64(5), "ok", true, "ratio", 1.5)
	want := "ts=2026-08-08T12:00:00.000Z level=info msg=\"update applied\" epoch=3 edits=5 ok=true ratio=1.5\n"
	if buf.String() != want {
		t.Fatalf("line = %q, want %q", buf.String(), want)
	}
}

func TestLevelFiltering(t *testing.T) {
	l, buf := capture(LevelWarn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	out := buf.String()
	if strings.Contains(out, "level=debug") || strings.Contains(out, "level=info") {
		t.Errorf("below-threshold lines written:\n%s", out)
	}
	if !strings.Contains(out, "level=warn") || !strings.Contains(out, "level=error") {
		t.Errorf("at/above-threshold lines missing:\n%s", out)
	}
	l.SetLevel(LevelDebug)
	l.Debug("now visible")
	if !strings.Contains(buf.String(), "now visible") {
		t.Error("SetLevel did not lower the threshold")
	}
}

func TestWithBindsFields(t *testing.T) {
	l, buf := capture(LevelDebug)
	req := l.With("endpoint", "route", "method", "GET")
	req.Debug("request", "status", 200)
	if !strings.Contains(buf.String(), " endpoint=route method=GET status=200") {
		t.Fatalf("bound fields missing: %q", buf.String())
	}
	// The child shares the parent's level.
	req.SetLevel(LevelOff)
	buf.Reset()
	l.Error("silenced")
	if buf.String() != "" {
		t.Errorf("parent wrote after child SetLevel(off): %q", buf.String())
	}
}

func TestValueFormatting(t *testing.T) {
	l, buf := capture(LevelInfo)
	l.Info("m",
		"dur", 1500*time.Millisecond,
		"err", errors.New("boom failed"),
		"quoted", "a b",
		"eq", "a=b",
		"empty", "",
		"nilv", nil,
	)
	out := buf.String()
	for _, want := range []string{
		"dur=1.5s", `err="boom failed"`, `quoted="a b"`, `eq="a=b"`, `empty=""`, "nilv=<nil>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

func TestMalformedPairs(t *testing.T) {
	l, buf := capture(LevelInfo)
	l.Info("m", 42, "v", "dangling")
	out := buf.String()
	if !strings.Contains(out, "!BADKEY=v") || !strings.Contains(out, "dangling=!MISSING") {
		t.Fatalf("malformed pairs not flagged: %q", out)
	}
}

func TestNilLoggerIsSilent(t *testing.T) {
	var l *Logger
	l.Info("into the void", "k", "v") // must not panic
	l.SetLevel(LevelDebug)
	if l.Enabled(LevelError) {
		t.Error("nil logger reports enabled")
	}
	if child := l.With("k", "v"); child != nil {
		t.Error("nil logger's With returned non-nil")
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "off": LevelOff,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted nonsense")
	}
}

func TestContextPlumbing(t *testing.T) {
	l, buf := capture(LevelInfo)
	ctx := NewContext(context.Background(), l.With("req", "abc"))
	FromContext(ctx).Info("handled")
	if !strings.Contains(buf.String(), "req=abc") {
		t.Fatalf("context logger lost fields: %q", buf.String())
	}
	if FromContext(context.Background()) != nil {
		t.Error("empty context returned a logger")
	}
}

func TestConcurrentLines(t *testing.T) {
	l, buf := capture(LevelInfo)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Info("line", "worker", w, "i", i)
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 800 {
		t.Fatalf("got %d lines, want 800", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "ts=") || !strings.Contains(line, "msg=line") {
			t.Fatalf("interleaved or malformed line: %q", line)
		}
	}
}

func TestLevelString(t *testing.T) {
	if fmt.Sprint(LevelDebug, LevelInfo, LevelWarn, LevelError, LevelOff) != "debug info warn error off" {
		t.Errorf("level names wrong: %v", fmt.Sprint(LevelDebug, LevelInfo, LevelWarn, LevelError, LevelOff))
	}
}

// TestWithFieldOrdering pins the contract the serving tier's tracing
// relies on: With-bound fields render before the call-site fields, in
// binding order, so the trace ID stamped by the instrument middleware
// always appears in the same position on every line of one request.
func TestWithFieldOrdering(t *testing.T) {
	l, buf := capture(LevelInfo)
	req := l.With("endpoint", "route").With("trace", "00000000deadbeef")
	req.Info("slow query", "elapsed", 2*time.Second)
	line := buf.String()
	want := " endpoint=route trace=00000000deadbeef elapsed=2s"
	if !strings.Contains(line, want) {
		t.Fatalf("line = %q, want fields ordered as %q", line, want)
	}
	// Grandchildren inherit the whole chain, trace ID included.
	buf.Reset()
	req.With("stage", "mdijkstra").Info("leg done")
	if !strings.Contains(buf.String(), "endpoint=route trace=00000000deadbeef stage=mdijkstra") {
		t.Fatalf("grandchild lost inherited fields: %q", buf.String())
	}
}

// TestContextCarriesTraceFields checks the request-scoped logger a
// handler recovers via FromContext still carries the trace ID bound
// before NewContext — the plumbing instrument() depends on.
func TestContextCarriesTraceFields(t *testing.T) {
	l, buf := capture(LevelInfo)
	bound := l.With("trace", "0123456789abcdef")
	ctx := NewContext(context.Background(), bound)

	deepHandler := func(ctx context.Context) {
		FromContext(ctx).Info("deep work", "step", 2)
	}
	deepHandler(ctx)
	if !strings.Contains(buf.String(), "trace=0123456789abcdef step=2") {
		t.Fatalf("context-recovered logger dropped the trace field: %q", buf.String())
	}
	// A context without a logger yields nil, which logs nothing and does
	// not panic — optional tracing must not need guards at call sites.
	buf.Reset()
	deepHandler(context.Background())
	if buf.String() != "" {
		t.Errorf("nil context logger wrote output: %q", buf.String())
	}
}
