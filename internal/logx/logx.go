// Package logx is the serving tier's leveled, structured logger: one line
// per event in logfmt-style key=value form (ts=… level=… msg=… k=v …),
// with request-scoped field binding via With and context plumbing via
// NewContext/FromContext. It is deliberately tiny — no dependency, no
// global state, no reflection beyond fmt — because its output is meant
// for operators and log pipelines, not for re-parsing by this program.
package logx

import (
	"context"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities. Messages below the logger's level are
// dropped before any formatting work happens.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	// LevelOff disables all output.
	LevelOff
)

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	case LevelOff:
		return "off"
	}
	return fmt.Sprintf("level(%d)", int32(l))
}

// ParseLevel parses a level name (debug, info, warn, error, off).
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off", "none":
		return LevelOff, nil
	}
	return LevelInfo, fmt.Errorf("logx: unknown level %q (use debug, info, warn, error or off)", s)
}

// sink is the output shared by a logger and every child derived from it
// with With: one writer, one mutex (lines never interleave), one level.
type sink struct {
	mu    sync.Mutex
	w     io.Writer
	level atomic.Int32
	now   func() time.Time // injectable for tests
}

// Logger writes structured log lines. Create one with New; derive
// request-scoped children with With. All methods are safe for concurrent
// use, and a nil *Logger silently discards everything, so optional
// logging needs no guards.
type Logger struct {
	s      *sink
	prefix string // pre-rendered bound fields, "" or " k=v k=v"
}

// New returns a Logger writing lines at or above level to w.
func New(w io.Writer, level Level) *Logger {
	s := &sink{w: w, now: time.Now}
	s.level.Store(int32(level))
	return &Logger{s: s}
}

// Default returns a Logger writing to stderr at LevelInfo.
func Default() *Logger { return New(os.Stderr, LevelInfo) }

// Discard returns a Logger that drops everything — for benchmarks and
// tests that exercise noisy paths.
func Discard() *Logger { return New(io.Discard, LevelOff) }

// SetLevel changes the threshold for this logger and every logger sharing
// its sink (parents and With-children alike).
func (l *Logger) SetLevel(level Level) {
	if l == nil {
		return
	}
	l.s.level.Store(int32(level))
}

// Enabled reports whether a message at level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= LevelDebug && level < LevelOff && int32(level) >= l.s.level.Load()
}

// With returns a child logger with kv ("key", value, "key", value, …)
// bound to every line it writes — the request-scoped-fields primitive.
// The child shares the parent's writer and level.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil || len(kv) == 0 {
		return l
	}
	var b strings.Builder
	b.WriteString(l.prefix)
	appendKV(&b, kv)
	return &Logger{s: l.s, prefix: b.String()}
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(l.s.now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(quote(msg))
	b.WriteString(l.prefix)
	appendKV(&b, kv)
	b.WriteByte('\n')
	l.s.mu.Lock()
	defer l.s.mu.Unlock()
	io.WriteString(l.s.w, b.String())
}

// appendKV renders alternating key/value pairs. A non-string key or a
// trailing key without a value is rendered under !BADKEY instead of
// panicking — a logging call must never take the server down.
func appendKV(b *strings.Builder, kv []any) {
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok || key == "" {
			key = "!BADKEY"
		}
		b.WriteByte(' ')
		b.WriteString(key)
		b.WriteByte('=')
		if i+1 < len(kv) {
			b.WriteString(formatValue(kv[i+1]))
		} else {
			b.WriteString("!MISSING")
		}
	}
}

// formatValue renders one value: numbers and bools bare, durations and
// errors via their String/Error forms, strings quoted only when needed.
func formatValue(v any) string {
	switch x := v.(type) {
	case string:
		return quote(x)
	case error:
		return quote(x.Error())
	case time.Duration:
		return x.String()
	case fmt.Stringer:
		return quote(x.String())
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case float32:
		return strconv.FormatFloat(float64(x), 'g', -1, 32)
	case bool, int, int8, int16, int32, int64, uint, uint8, uint16, uint32, uint64:
		return fmt.Sprint(x)
	case nil:
		return "<nil>"
	}
	return quote(fmt.Sprint(v))
}

// quote wraps s in strconv quoting when it contains whitespace, quotes,
// '=' or control characters; bare tokens stay bare for readability.
func quote(s string) string {
	if s == "" {
		return `""`
	}
	for _, c := range s {
		if c <= ' ' || c == '"' || c == '=' || c == 0x7f {
			return strconv.Quote(s)
		}
	}
	return s
}

type ctxKey struct{}

// NewContext returns ctx carrying l; handlers deeper in the call chain
// recover it with FromContext to log with the request's bound fields.
func NewContext(ctx context.Context, l *Logger) context.Context {
	return context.WithValue(ctx, ctxKey{}, l)
}

// FromContext returns the Logger carried by ctx, or nil (which is itself
// a valid, silent Logger) when none was attached.
func FromContext(ctx context.Context) *Logger {
	l, _ := ctx.Value(ctxKey{}).(*Logger)
	return l
}
