// Package metrics is a dependency-free metrics library with
// Prometheus-compatible text exposition (format version 0.0.4): counters,
// gauges, sampled gauge/counter functions, and fixed-bucket histograms.
// All hot-path operations (Inc, Add, Set, Observe) are lock-free atomics
// and allocation-free; the only locking happens at registration time and
// while rendering a scrape. A Registry is an http.Handler, so mounting
// GET /metrics is one line, and ParseText (parse.go) validates scrape
// output so tests and CI gates can assert on it without a Prometheus
// client dependency.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key="value" pair attached to a metric. Labels are fixed at
// registration: every distinct label combination is its own metric object,
// so the hot path never touches a label map.
type Label struct {
	Key, Value string
}

// L is shorthand for Label{Key: k, Value: v}.
func L(k, v string) Label { return Label{Key: k, Value: v} }

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// collector renders one metric's sample lines. name is the family name,
// labels the pre-rendered `{k="v",...}` suffix (or "").
type collector interface {
	collect(w io.Writer, name, labels string) error
}

// series is one registered (labels, metric) pair within a family.
type series struct {
	labels string // pre-rendered, "" when unlabeled
	c      collector
}

// family is every series registered under one metric name, sharing a help
// string and a type.
type family struct {
	name, help, typ string
	series          []series
}

// Registry holds metric families and renders them in registration order.
// All methods are safe for concurrent use. Create one with New.
type Registry struct {
	mu    sync.Mutex
	fams  []*family
	index map[string]*family
}

// New returns an empty Registry.
func New() *Registry {
	return &Registry{index: make(map[string]*family)}
}

// register adds a series under name, creating the family on first use and
// panicking on invalid names, duplicate (name, labels) registration, or a
// help/type conflict — all programming errors caught at startup, never at
// scrape or observation time.
func (r *Registry) register(name, help, typ string, labels []Label, c collector) {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelRe.MatchString(l.Key) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l.Key, name))
		}
	}
	rendered := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.index[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.index[name] = f
		r.fams = append(r.fams, f)
	} else if f.typ != typ || f.help != help {
		panic(fmt.Sprintf("metrics: %q re-registered with conflicting help or type", name))
	}
	for _, s := range f.series {
		if s.labels == rendered {
			panic(fmt.Sprintf("metrics: duplicate registration of %s%s", name, rendered))
		}
	}
	f.series = append(f.series, series{labels: rendered, c: c})
}

// renderLabels pre-renders a label set as `{k="v",...}`, escaping values.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// WriteText renders every registered metric in the Prometheus text
// exposition format: families in registration order, each with its
// # HELP and # TYPE header, series in registration order within a family.
func (r *Registry) WriteText(w io.Writer) error {
	// Snapshot under the lock, render outside it: sampled gauge functions
	// may be arbitrarily slow, and late registrations must not race the
	// family/series slices while a scrape walks them.
	r.mu.Lock()
	fams := make([]family, len(r.fams))
	for i, f := range r.fams {
		fams[i] = family{name: f.name, help: f.help, typ: f.typ,
			series: append([]series(nil), f.series...)}
	}
	r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			if err := s.c.collect(bw, f.name, s.labels); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, "\\", `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// ContentType is the Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// ServeHTTP renders a scrape; a Registry mounts directly as GET /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", ContentType)
	// Errors past this point are connection failures; the scraper retries.
	_ = r.WriteText(w)
}

// formatFloat renders a sample value: integers without an exponent,
// +Inf/-Inf/NaN in the exposition spelling.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter is a monotonically increasing integer counter.
type Counter struct {
	v atomic.Int64
}

// Counter registers and returns a new counter. The name should end in
// _total by Prometheus convention.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", labels, c)
	return c
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n, which must be non-negative (counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: counter decrement")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) collect(w io.Writer, name, labels string) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, labels, c.v.Load())
	return err
}

// Gauge is an integer gauge: a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", labels, g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) collect(w io.Writer, name, labels string) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, labels, g.v.Load())
	return err
}

// funcCollector samples fn at scrape time.
type funcCollector func() float64

func (fn funcCollector) collect(w io.Writer, name, labels string) error {
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(fn()))
	return err
}

// GaugeFunc registers a gauge whose value is sampled by calling fn at
// scrape time — the zero-hot-path-cost way to export a value something
// else already maintains (a pool occupancy count, a queue depth).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "gauge", labels, funcCollector(fn))
}

// CounterFunc registers a counter whose value is sampled by calling fn at
// scrape time. fn must be monotonically non-decreasing (typically it reads
// an existing atomic counter).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "counter", labels, funcCollector(fn))
}

// Histogram is a fixed-bucket histogram. Bucket counts, the observation
// count and the sum are all atomics; Observe is lock-free and
// allocation-free. Buckets are cumulative in the exposition (le-labeled
// upper bounds, inclusive), matching Prometheus histogram semantics.
type Histogram struct {
	bounds []float64      // ascending finite upper bounds
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf overflow bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	// exemplars holds at most one tagged observation per bucket
	// (last-writer-wins), rendered as an OpenMetrics-style exemplar suffix
	// on that bucket's sample line.
	exemplars []atomic.Pointer[exemplar]
}

// exemplar is one tagged observation pinned to a histogram bucket — the
// serving tier uses it to attach slow-query trace IDs to the latency
// bucket the query landed in.
type exemplar struct {
	labels string // pre-rendered {k="v"}
	value  float64
}

// Histogram registers and returns a new histogram with the given bucket
// upper bounds, which must be finite and strictly ascending. An implicit
// +Inf overflow bucket is always appended.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q needs at least one bucket", name))
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("metrics: histogram %q has non-finite bucket %v", name, b))
		}
		if i > 0 && bounds[i-1] >= b {
			panic(fmt.Sprintf("metrics: histogram %q buckets not strictly ascending", name))
		}
	}
	for _, l := range labels {
		if l.Key == "le" {
			panic(fmt.Sprintf("metrics: histogram %q may not carry an le label", name))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	h.exemplars = make([]atomic.Pointer[exemplar], len(bounds)+1)
	r.register(name, help, "histogram", labels, h)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: le is inclusive
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Exemplar tags the bucket v falls into with an OpenMetrics-style
// exemplar: a ` # {key="val"} value` suffix on that bucket's sample line.
// It does not observe v — call Observe separately. Last writer per bucket
// wins; the write is one atomic pointer store, so tagging is safe on the
// serving path. ParseText tolerates and validates the suffix, so scrape
// consumers that predate exemplars keep working.
func (h *Histogram) Exemplar(v float64, key, val string) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.exemplars[i].Store(&exemplar{labels: renderLabels([]Label{L(key, val)}), value: v})
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (q in [0, 1]) from the bucket counts
// by linear interpolation within the winning bucket, the standard
// Prometheus histogram_quantile estimate. Observations in the overflow
// bucket are attributed to the largest finite bound. Returns 0 with no
// observations. The snapshot is not atomic across buckets; under
// concurrent observation the estimate is approximate, which is all a
// monitoring quantile promises.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		cum += c
		if float64(cum) >= rank {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1] // overflow bucket
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			if c == 0 {
				return hi
			}
			frac := (rank - float64(cum-c)) / float64(c)
			return lo + (hi-lo)*frac
		}
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) collect(w io.Writer, name, labels string) error {
	// Cumulative le buckets; the inner labels merge with le.
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		sep := ""
		if inner != "" {
			sep = ","
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d", name, inner, sep, le, cum); err != nil {
			return err
		}
		if ex := h.exemplars[i].Load(); ex != nil {
			if _, err := fmt.Fprintf(w, " # %s %s", ex.labels, formatFloat(ex.value)); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.count.Load())
	return err
}

// DefTimeBuckets is the default latency bucket layout, in seconds:
// exponential-ish from 100µs to 10s, suited to sub-millisecond indexed
// queries and multi-second unindexed ones alike.
var DefTimeBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ExpBuckets returns n strictly ascending buckets starting at start and
// multiplying by factor (> 1) each step.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns n strictly ascending buckets starting at start
// with the given width (> 0) between them.
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("metrics: LinearBuckets needs width > 0, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}
