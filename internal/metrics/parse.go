package metrics

// ParseText is the validating counterpart of Registry.WriteText: a small
// parser for the Prometheus text exposition format used by the test
// suites, the -httpload bench gate and the CI scrape smoke to assert that
// /metrics output is well-formed and that specific samples hold specific
// values — without depending on a Prometheus client library.

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseText parses a text-format exposition and returns every sample as
// name{labels} → value (the label block exactly as rendered, "" when
// unlabeled). It validates comment lines (# HELP / # TYPE with a known
// type), metric and label name character sets, label quoting and escapes,
// and the value syntax, and rejects duplicate samples — returning an
// error naming the first offending line.
func ParseText(data []byte) (map[string]float64, error) {
	out := make(map[string]float64)
	for n, line := range strings.Split(string(data), "\n") {
		lineNo := n + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		key, val, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate sample %s", lineNo, key)
		}
		out[key] = val
	}
	return out, nil
}

func parseComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment, legal
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !nameRe.MatchString(fields[2]) {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
	case "TYPE":
		if len(fields) < 4 || !nameRe.MatchString(fields[2]) {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
	}
	return nil
}

// parseSample parses `name[{labels}] value [timestamp]`.
func parseSample(line string) (key string, val float64, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", 0, fmt.Errorf("malformed sample %q", line)
	}
	name := line[:i]
	if !nameRe.MatchString(name) {
		return "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[i:]
	labels := ""
	if rest[0] == '{' {
		end, err := scanLabels(rest)
		if err != nil {
			return "", 0, err
		}
		labels, rest = rest[:end], rest[end:]
	}
	// An OpenMetrics-style exemplar may trail the value:
	// ` # {k="v"} value [timestamp]`. Validate and strip it — the sample
	// key/value are unaffected (Registry.WriteText emits these on
	// histogram buckets tagged via Histogram.Exemplar).
	if j := strings.Index(rest, " # "); j >= 0 {
		if err := validateExemplar(rest[j+3:]); err != nil {
			return "", 0, err
		}
		rest = rest[:j]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", 0, fmt.Errorf("malformed sample %q", line)
	}
	val, err = parseValue(fields[0])
	if err != nil {
		return "", 0, err
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", 0, fmt.Errorf("invalid timestamp %q", fields[1])
		}
	}
	return name + labels, val, nil
}

// validateExemplar checks the `{k="v",...} value [timestamp]` tail of an
// exemplar suffix.
func validateExemplar(s string) error {
	if s == "" || s[0] != '{' {
		return fmt.Errorf("malformed exemplar %q", s)
	}
	end, err := scanLabels(s)
	if err != nil {
		return err
	}
	fields := strings.Fields(s[end:])
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("malformed exemplar %q", s)
	}
	if _, err := parseValue(fields[0]); err != nil {
		return err
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			return fmt.Errorf("invalid exemplar timestamp %q", fields[1])
		}
	}
	return nil
}

// scanLabels validates a `{k="v",...}` block starting at s[0] == '{' and
// returns the index one past its closing brace.
func scanLabels(s string) (int, error) {
	i := 1
	for {
		if i < len(s) && s[i] == '}' {
			return i + 1, nil // {} and trailing-comma forms
		}
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) || !labelRe.MatchString(s[start:i]) {
			return 0, fmt.Errorf("invalid label name in %q", s)
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				if i+1 >= len(s) || !strings.ContainsRune(`\"n`, rune(s[i+1])) {
					return 0, fmt.Errorf("invalid escape in label value in %q", s)
				}
				i++
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value in %q", s)
		}
		i++ // closing '"'
		if i < len(s) && s[i] == ',' {
			i++
			continue
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		return 0, fmt.Errorf("malformed label block in %q", s)
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid sample value %q", s)
	}
	return v, nil
}
