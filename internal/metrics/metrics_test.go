package metrics

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func scrape(t *testing.T, r *Registry) (string, map[string]float64) {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	samples, err := ParseText(buf.Bytes())
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	return buf.String(), samples
}

func TestCounterAndGauge(t *testing.T) {
	r := New()
	c := r.Counter("requests_total", "Requests served.")
	g := r.Gauge("queue_depth", "Requests waiting.")
	c.Inc()
	c.Add(41)
	g.Set(7)
	g.Add(-3)
	if c.Value() != 42 || g.Value() != 4 {
		t.Fatalf("counter %d gauge %d, want 42 and 4", c.Value(), g.Value())
	}
	_, samples := scrape(t, r)
	if samples["requests_total"] != 42 || samples["queue_depth"] != 4 {
		t.Fatalf("scraped %v", samples)
	}
}

func TestCounterDecrementPanics(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "c")
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestLabeledSeries(t *testing.T) {
	r := New()
	a := r.Counter("hits_total", "Hits.", L("cache", "query"))
	b := r.Counter("hits_total", "Hits.", L("cache", "shared"))
	a.Add(3)
	b.Add(5)
	_, samples := scrape(t, r)
	if samples[`hits_total{cache="query"}`] != 3 || samples[`hits_total{cache="shared"}`] != 5 {
		t.Fatalf("scraped %v", samples)
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := New()
	r.Counter("weird_total", "w", L("path", "a\\b\"c\nd")).Inc()
	text, samples := scrape(t, r)
	want := `weird_total{path="a\\b\"c\nd"}`
	if samples[want] != 1 {
		t.Fatalf("escaped sample missing; got:\n%s", text)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := New()
	r.Counter("x_total", "x")
	for name, fn := range map[string]func(){
		"same name+labels":  func() { r.Counter("x_total", "x") },
		"conflicting type":  func() { r.Gauge("x_total", "x") },
		"invalid name":      func() { r.Counter("0bad", "x") },
		"invalid label":     func() { r.Counter("y_total", "y", L("0bad", "v")) },
		"histogram le":      func() { r.Histogram("h", "h", []float64{1}, L("le", "1")) },
		"unsorted buckets":  func() { r.Histogram("h2", "h", []float64{2, 1}) },
		"non-finite bucket": func() { r.Histogram("h3", "h", []float64{1, math.Inf(1)}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: registration did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestHistogramBucketPlacement pins the le semantics: bounds are
// inclusive upper bounds, and exposition buckets are cumulative.
func TestHistogramBucketPlacement(t *testing.T) {
	r := New()
	h := r.Histogram("lat_seconds", "Latency.", []float64{1, 2, 3})
	for _, v := range []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0} {
		h.Observe(v)
	}
	_, samples := scrape(t, r)
	for key, want := range map[string]float64{
		`lat_seconds_bucket{le="1"}`:    2, // 0.5, 1.0 — the boundary lands in its own bucket
		`lat_seconds_bucket{le="2"}`:    4,
		`lat_seconds_bucket{le="3"}`:    6,
		`lat_seconds_bucket{le="+Inf"}`: 6,
		"lat_seconds_count":             6,
		"lat_seconds_sum":               10.5,
	} {
		if samples[key] != want {
			t.Errorf("%s = %v, want %v", key, samples[key], want)
		}
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	r := New()
	h := r.Histogram("h_seconds", "h", []float64{1, 10})
	h.Observe(10.0001)
	h.Observe(1e12)
	_, samples := scrape(t, r)
	if samples[`h_seconds_bucket{le="10"}`] != 0 {
		t.Errorf("finite buckets = %v, want 0", samples[`h_seconds_bucket{le="10"}`])
	}
	if samples[`h_seconds_bucket{le="+Inf"}`] != 2 || samples["h_seconds_count"] != 2 {
		t.Errorf("overflow bucket/count wrong: %v", samples)
	}
	if samples["h_seconds_sum"] != 10.0001+1e12 {
		t.Errorf("sum = %v", samples["h_seconds_sum"])
	}
}

// TestHistogramZeroObservations checks an untouched histogram still
// renders a complete, parseable family with all-zero samples.
func TestHistogramZeroObservations(t *testing.T) {
	r := New()
	r.Histogram("idle_seconds", "Never observed.", []float64{0.5, 1})
	text, samples := scrape(t, r)
	for _, key := range []string{
		`idle_seconds_bucket{le="0.5"}`,
		`idle_seconds_bucket{le="1"}`,
		`idle_seconds_bucket{le="+Inf"}`,
		"idle_seconds_sum",
		"idle_seconds_count",
	} {
		got, ok := samples[key]
		if !ok {
			t.Fatalf("missing %s in:\n%s", key, text)
		}
		if got != 0 {
			t.Errorf("%s = %v, want 0", key, got)
		}
	}
	if !strings.Contains(text, "# TYPE idle_seconds histogram") {
		t.Errorf("missing TYPE header:\n%s", text)
	}
}

func TestHistogramLabeledBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("req_seconds", "r", []float64{1}, L("endpoint", "route"))
	h.Observe(0.5)
	_, samples := scrape(t, r)
	if samples[`req_seconds_bucket{endpoint="route",le="1"}`] != 1 {
		t.Fatalf("labeled bucket missing: %v", samples)
	}
	if samples[`req_seconds_count{endpoint="route"}`] != 1 {
		t.Fatalf("labeled count missing: %v", samples)
	}
}

// TestHistogramAccumulationProperty drives random observations against a
// brute-force reference. Single-threaded, the CAS float accumulation
// performs the same additions in the same order as the reference, so the
// sum must match bit-for-bit, and every bucket count exactly.
func TestHistogramAccumulationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		nb := 1 + rng.Intn(10)
		bounds := make([]float64, 0, nb)
		x := rng.Float64() * 0.01
		for len(bounds) < nb {
			x += rng.Float64() + 1e-9
			bounds = append(bounds, x)
		}
		r := New()
		h := r.Histogram("p_seconds", "p", bounds)
		refCounts := make([]int64, nb+1)
		refSum := 0.0
		var refCount int64
		for i := 0; i < 200; i++ {
			v := rng.Float64() * x * 1.5
			if rng.Intn(10) == 0 {
				v = bounds[rng.Intn(nb)] // exact boundary hits
			}
			h.Observe(v)
			refSum += v
			refCount++
			j := 0
			for j < nb && v > bounds[j] {
				j++
			}
			refCounts[j]++
		}
		if h.Sum() != refSum {
			t.Fatalf("trial %d: sum %v != reference %v", trial, h.Sum(), refSum)
		}
		if h.Count() != refCount {
			t.Fatalf("trial %d: count %d != reference %d", trial, h.Count(), refCount)
		}
		_, samples := scrape(t, r)
		var cum int64
		for j := range refCounts {
			cum += refCounts[j]
			le := "+Inf"
			if j < nb {
				le = formatFloat(bounds[j])
			}
			key := "p_seconds_bucket{le=\"" + le + "\"}"
			if samples[key] != float64(cum) {
				t.Fatalf("trial %d: %s = %v, want %d", trial, key, samples[key], cum)
			}
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("q_seconds", "q", []float64{1, 2, 4})
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty quantile = %v, want 0", h.Quantile(0.5))
	}
	for i := 0; i < 100; i++ {
		h.Observe(0.99) // all in the first bucket
	}
	if q := h.Quantile(0.5); q <= 0 || q > 1 {
		t.Errorf("p50 = %v, want within (0, 1]", q)
	}
	h.Observe(100) // overflow: attributed to the top finite bound
	if q := h.Quantile(1); q != 4 {
		t.Errorf("p100 with overflow = %v, want 4", q)
	}
}

func TestGaugeAndCounterFuncs(t *testing.T) {
	r := New()
	v := 3.5
	r.GaugeFunc("temp", "t", func() float64 { return v })
	r.CounterFunc("ticks_total", "t", func() float64 { return 9 })
	_, samples := scrape(t, r)
	if samples["temp"] != 3.5 || samples["ticks_total"] != 9 {
		t.Fatalf("scraped %v", samples)
	}
	v = math.Inf(1)
	_, samples = scrape(t, r)
	if !math.IsInf(samples["temp"], 1) {
		t.Fatalf("inf gauge = %v", samples["temp"])
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	for name, in := range map[string]string{
		"bad name":        "0bad 1",
		"no value":        "metric_name",
		"bad value":       "metric_name one",
		"bad label name":  `m{0bad="v"} 1`,
		"unquoted label":  `m{k=v} 1`,
		"unterminated":    `m{k="v} 1`,
		"bad escape":      `m{k="a\x"} 1`,
		"duplicate":       "m 1\nm 2",
		"bad type":        "# TYPE m rainbow",
		"malformed type":  "# TYPE m",
		"malformed help":  "# HELP",
		"bad timestamp":   "m 1 soon",
		"trailing fields": "m 1 2 3",
	} {
		if _, err := ParseText([]byte(in)); err == nil {
			t.Errorf("%s: ParseText(%q) accepted", name, in)
		}
	}
}

func TestParseTextValues(t *testing.T) {
	samples, err := ParseText([]byte("# bare comment\nup 1\nlat{q=\"0.5\"} 0.25 1712345678\ninf +Inf\n"))
	if err != nil {
		t.Fatal(err)
	}
	if samples["up"] != 1 || samples[`lat{q="0.5"}`] != 0.25 || !math.IsInf(samples["inf"], 1) {
		t.Fatalf("parsed %v", samples)
	}
}

// TestConcurrentObserveAndScrape hammers every metric type while scraping
// in a loop; run under -race this is the package's data-race guard.
func TestConcurrentObserveAndScrape(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	h := r.Histogram("h_seconds", "h", DefTimeBuckets)
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 5000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 1000)
			}
		}()
	}
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := r.WriteText(&buf); err != nil {
				t.Errorf("WriteText: %v", err)
				return
			}
			if _, err := ParseText(buf.Bytes()); err != nil {
				t.Errorf("mid-storm scrape invalid: %v", err)
				return
			}
		}
	}()
	writers.Wait()
	close(stop)
	scraper.Wait()
	if c.Value() != 20000 || h.Count() != 20000 || g.Value() != 20000 {
		t.Fatalf("lost updates: counter %d, histogram %d, gauge %d", c.Value(), h.Count(), g.Value())
	}
}

// TestParseTextEmptyFamilies checks an exposition consisting only of
// HELP/TYPE headers — a registry whose families have no series yet, or a
// scrape filtered down to nothing — parses to an empty sample map rather
// than erroring.
func TestParseTextEmptyFamilies(t *testing.T) {
	in := "# HELP skysr_search_total Searches answered.\n" +
		"# TYPE skysr_search_total counter\n" +
		"\n" +
		"# HELP skysr_http_request_seconds Request wall time.\n" +
		"# TYPE skysr_http_request_seconds histogram\n"
	samples, err := ParseText([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 0 {
		t.Fatalf("samples = %v, want none", samples)
	}
	// Entirely empty and whitespace-only inputs are fine too.
	for _, in := range []string{"", "\n\n", "  \n"} {
		if samples, err = ParseText([]byte(in)); err != nil || len(samples) != 0 {
			t.Errorf("ParseText(%q) = %v, %v", in, samples, err)
		}
	}
}

// TestParseTextOverflowBucket checks the +Inf bucket round-trips through
// a real scrape: its sample key keeps the literal le="+Inf" and its
// cumulative count equals _count even when every observation overflowed.
func TestParseTextOverflowBucket(t *testing.T) {
	r := New()
	h := r.Histogram("t_seconds", "h.", []float64{0.1, 1})
	h.Observe(5)  // overflow
	h.Observe(50) // overflow
	_, samples := scrape(t, r)
	if got := samples[`t_seconds_bucket{le="+Inf"}`]; got != 2 {
		t.Errorf(`+Inf bucket = %v, want 2`, got)
	}
	if got := samples[`t_seconds_bucket{le="1"}`]; got != 0 {
		t.Errorf(`le=1 bucket = %v, want 0`, got)
	}
	if samples["t_seconds_count"] != 2 || samples["t_seconds_sum"] != 55 {
		t.Errorf("count/sum = %v/%v, want 2/55",
			samples["t_seconds_count"], samples["t_seconds_sum"])
	}
}

// TestHistogramExemplar checks Exemplar pins a trace reference to the
// right bucket, that the suffix survives WriteText → ParseText, and that
// the sample values are unaffected.
func TestHistogramExemplar(t *testing.T) {
	r := New()
	h := r.Histogram("lat_seconds", "h.", []float64{0.1, 1}, L("endpoint", "route"))
	h.Observe(0.05)
	h.Observe(0.7)
	h.Exemplar(0.7, "trace_id", "0123456789abcdef")
	text, samples := scrape(t, r)
	wantLine := `lat_seconds_bucket{endpoint="route",le="1"} 2 # {trace_id="0123456789abcdef"} 0.7`
	if !strings.Contains(text, wantLine) {
		t.Fatalf("scrape lacks exemplar line %q:\n%s", wantLine, text)
	}
	if samples[`lat_seconds_bucket{endpoint="route",le="1"}`] != 2 {
		t.Errorf("exemplar suffix changed the parsed sample: %v", samples)
	}
	// Overflow observations can carry exemplars too (the +Inf bucket is
	// where the worst queries land — exactly the ones worth tracing).
	h.Observe(30)
	h.Exemplar(30, "trace_id", "deadbeefdeadbeef")
	text, _ = scrape(t, r)
	if !strings.Contains(text, `le="+Inf"} 3 # {trace_id="deadbeefdeadbeef"} 30`) {
		t.Fatalf("overflow exemplar missing:\n%s", text)
	}
	// Last writer per bucket wins.
	h.Exemplar(0.9, "trace_id", "feedfacefeedface")
	text, _ = scrape(t, r)
	if !strings.Contains(text, `le="1"} 2 # {trace_id="feedfacefeedface"} 0.9`) {
		t.Fatalf("exemplar not overwritten:\n%s", text)
	}
}

// TestParseTextRejectsMalformedExemplars extends the malformed-input
// table to the exemplar suffix grammar.
func TestParseTextRejectsMalformedExemplars(t *testing.T) {
	for name, in := range map[string]string{
		"no labels":     `m_bucket{le="1"} 2 # 0.7`,
		"bad labels":    `m_bucket{le="1"} 2 # {k=v} 0.7`,
		"no value":      `m_bucket{le="1"} 2 # {k="v"}`,
		"bad value":     `m_bucket{le="1"} 2 # {k="v"} fast`,
		"bad timestamp": `m_bucket{le="1"} 2 # {k="v"} 0.7 soon`,
	} {
		if _, err := ParseText([]byte(in)); err == nil {
			t.Errorf("%s: ParseText(%q) accepted", name, in)
		}
	}
	// A well-formed exemplar with a timestamp parses.
	samples, err := ParseText([]byte(`m_bucket{le="1"} 2 # {trace_id="ab"} 0.7 1712345678.5`))
	if err != nil {
		t.Fatal(err)
	}
	if samples[`m_bucket{le="1"}`] != 2 {
		t.Fatalf("parsed %v", samples)
	}
}
