package dijkstra

import (
	"skysr/internal/graph"
	"skysr/internal/pq"
)

// Iterator enumerates the vertices reachable from a source in ascending
// distance order, one settle per Next call, and can be paused and resumed
// at any point. The PNE baseline (§2, Sharifzadeh et al.) uses one
// iterator per (PoI, category) pair as its incremental nearest-neighbour
// primitive.
//
// Unlike Workspace, an Iterator keeps sparse per-instance state (maps), so
// an arbitrary number of iterators can be live at once at memory cost
// proportional to what each has explored.
type Iterator struct {
	g    *graph.Graph
	heap *pq.Heap[Settled]
	best map[graph.VertexID]float64
	done map[graph.VertexID]bool
}

// NewIterator returns an iterator rooted at source.
func NewIterator(g *graph.Graph, source graph.VertexID) *Iterator {
	it := &Iterator{
		g: g,
		heap: pq.NewHeap[Settled](func(a, b Settled) bool {
			if a.Dist != b.Dist {
				return a.Dist < b.Dist
			}
			return a.V < b.V
		}),
		best: make(map[graph.VertexID]float64),
		done: make(map[graph.VertexID]bool),
	}
	it.heap.Push(Settled{V: source, Dist: 0})
	it.best[source] = 0
	return it
}

// Next settles and returns the next-closest vertex. ok is false when the
// reachable component is exhausted.
func (it *Iterator) Next() (Settled, bool) {
	for it.heap.Len() > 0 {
		s := it.heap.Pop()
		if it.done[s.V] {
			continue // stale duplicate entry
		}
		it.done[s.V] = true
		ts, ws := it.g.Neighbors(s.V)
		for i, t := range ts {
			if it.done[t] {
				continue
			}
			nd := s.Dist + ws[i]
			if cur, seen := it.best[t]; !seen || nd < cur {
				it.best[t] = nd
				it.heap.Push(Settled{V: t, Dist: nd})
			}
		}
		return s, true
	}
	return Settled{}, false
}

// ExploredBytes estimates the memory held by the iterator, for the Table 6
// accounting.
func (it *Iterator) ExploredBytes() int64 {
	return int64(len(it.best))*24 + int64(len(it.done))*16 + int64(it.heap.Len())*16
}
