package dijkstra

import (
	"math"

	"skysr/internal/graph"
	"skysr/internal/pq"
)

// CH answers distance queries over a contraction-hierarchy overlay
// (graph.CHOverlay): Bound runs the bidirectional point-to-point query,
// ToAll the reverse PHAST-style one-to-many sweep. Like Workspace, a CH
// amortizes its arrays across runs with epoch stamps and is not safe for
// concurrent use; unlike Workspace it never consults the underlying graph
// — the overlay's two CSR halves are the whole search space.
//
// Every value a CH returns is a lower bound of the true shortest-path
// distance over the graph's weight column (query sums accumulate with
// graph.AddDown), and is exactly that distance when the involved sums are
// exactly representable. Consumers that compare a bound against a
// sequentially-summed float64 route length must round it down to float32
// first (LowerBound32) to absorb association slack, exactly as the
// category-index rows do.
type CH struct {
	ov *graph.CHOverlay

	distF  []float64
	stampF []uint32
	distB  []float64
	stampB []uint32
	gen    uint32

	heapF *pq.Heap[chQueueItem]
	heapB *pq.Heap[chQueueItem]

	settledCount int64
	runCount     int64
}

type chQueueItem struct {
	v int32
	d float64
}

func chQueueLess(a, b chQueueItem) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	return a.v < b.v
}

// NewCH returns a query workspace over ov.
func NewCH(ov *graph.CHOverlay) *CH {
	n := ov.NumV
	return &CH{
		ov:     ov,
		distF:  make([]float64, n),
		stampF: make([]uint32, n),
		distB:  make([]float64, n),
		stampB: make([]uint32, n),
		heapF:  pq.NewHeap(chQueueLess),
		heapB:  pq.NewHeap(chQueueLess),
	}
}

// Overlay returns the overlay the workspace queries.
func (c *CH) Overlay() *graph.CHOverlay { return c.ov }

// SettledCount returns the total vertices settled across all queries.
func (c *CH) SettledCount() int64 { return c.settledCount }

// RunCount returns the number of Bound/ToAll invocations.
func (c *CH) RunCount() int64 { return c.runCount }

// nextGen advances the epoch stamp, clearing stamps on wrap.
func (c *CH) nextGen() {
	c.gen++
	if c.gen == 0 {
		clear(c.stampF)
		clear(c.stampB)
		c.gen = 1
	}
}

// Bound returns a lower bound of the shortest-path distance from s to t
// over the weight column, +Inf when t is unreachable from s. The bound is
// never above the exact real-valued distance, and equals the plain
// Dijkstra distance bit for bit when all partial sums are exactly
// representable (see graph.AddDown).
func (c *CH) Bound(s, t graph.VertexID) float64 {
	if s == t {
		return 0
	}
	c.runCount++
	c.nextGen()
	ov := c.ov
	best := math.Inf(1)

	fh, bh := c.heapF, c.heapB
	fh.Reset()
	bh.Reset()
	c.distF[s] = 0
	c.stampF[s] = c.gen
	fh.Push(chQueueItem{v: int32(s), d: 0})
	c.distB[t] = 0
	c.stampB[t] = c.gen
	bh.Push(chQueueItem{v: int32(t), d: 0})

	// Alternate the two upward searches; a direction stops once its queue
	// minimum can no longer improve the best meeting. The forward search
	// climbs Up; the backward search climbs the reversed graph's upward
	// half, which is exactly DownIn.
	fDone, bDone := false, false
	for (!fDone && fh.Len() > 0) || (!bDone && bh.Len() > 0) {
		if !fDone && fh.Len() > 0 {
			it := fh.Pop()
			if it.d >= best {
				// Everything still queued is at least this far: this
				// direction can no longer improve the meeting.
				fDone = true
			} else if it.d == c.distF[it.v] {
				// Equality filters superseded queue entries (no decrease-key
				// in the pairs heap; a shorter path re-pushed the vertex).
				c.settledCount++
				if c.stampB[it.v] == c.gen {
					if m := graph.AddDown(it.d, c.distB[it.v]); m < best {
						best = m
					}
				}
				for i := ov.UpOff[it.v]; i < ov.UpOff[it.v+1]; i++ {
					to := ov.UpTo[i]
					nd := graph.AddDown(it.d, ov.UpW[i])
					if c.stampF[to] != c.gen || nd < c.distF[to] {
						c.distF[to] = nd
						c.stampF[to] = c.gen
						fh.Push(chQueueItem{v: to, d: nd})
					}
				}
			}
		} else {
			fDone = true
		}
		if !bDone && bh.Len() > 0 {
			it := bh.Pop()
			if it.d >= best {
				bDone = true
			} else if it.d == c.distB[it.v] {
				c.settledCount++
				if c.stampF[it.v] == c.gen {
					if m := graph.AddDown(it.d, c.distF[it.v]); m < best {
						best = m
					}
				}
				for i := ov.DownOff[it.v]; i < ov.DownOff[it.v+1]; i++ {
					from := ov.DownFrom[i]
					nd := graph.AddDown(it.d, ov.DownW[i])
					if c.stampB[from] != c.gen || nd < c.distB[from] {
						c.distB[from] = nd
						c.stampB[from] = c.gen
						bh.Push(chQueueItem{v: from, d: nd})
					}
				}
			}
		} else {
			bDone = true
		}
	}
	return best
}

// ToAll computes, for every vertex v, a lower bound of the distance from
// v to the nearest source (the reverse one-to-many problem NNinit and the
// category-index rows ask), writing LowerBound32 values into out
// (float32, +Inf for unreachable). len(out) must be the vertex count.
//
// Phase 1 runs a multi-source upward search in the reversed graph (over
// DownIn); phase 2 sweeps vertices by descending rank, relaxing each
// vertex's upward arcs backwards — the PHAST linear pass that replaces a
// priority queue for the all-targets case.
func (c *CH) ToAll(sources []graph.VertexID, out []float32) {
	ov := c.ov
	c.runCount++
	c.nextGen()
	bh := c.heapB
	bh.Reset()
	for _, s := range sources {
		c.distB[s] = 0
		c.stampB[s] = c.gen
		bh.Push(chQueueItem{v: int32(s), d: 0})
	}
	for bh.Len() > 0 {
		it := bh.Pop()
		if it.d > c.distB[it.v] {
			continue
		}
		c.settledCount++
		for i := ov.DownOff[it.v]; i < ov.DownOff[it.v+1]; i++ {
			from := ov.DownFrom[i]
			nd := graph.AddDown(it.d, ov.DownW[i])
			if c.stampB[from] != c.gen || nd < c.distB[from] {
				c.distB[from] = nd
				c.stampB[from] = c.gen
				bh.Push(chQueueItem{v: from, d: nd})
			}
		}
	}
	// Descending-rank sweep: when v's upward arc v→y is reversed it is a
	// downward arc y→v, so dist(v → sources) can improve through y, whose
	// final value is already known (rank[y] > rank[v]).
	inf := float32(math.Inf(1))
	for i := ov.NumV - 1; i >= 0; i-- {
		v := ov.Order[i]
		d := math.Inf(1)
		if c.stampB[v] == c.gen {
			d = c.distB[v]
		}
		for j := ov.UpOff[v]; j < ov.UpOff[v+1]; j++ {
			y := ov.UpTo[j]
			if c.stampB[y] != c.gen {
				continue
			}
			if nd := graph.AddDown(c.distB[y], ov.UpW[j]); nd < d {
				d = nd
			}
		}
		if math.IsInf(d, 1) {
			out[v] = inf
			continue
		}
		c.distB[v] = d
		c.stampB[v] = c.gen
		out[v] = LowerBound32(d)
	}
}

// LowerBound32 narrows a float64 lower bound to float32 without ever
// rounding up, so the result stays a valid lower bound. It is the same
// discipline the category-index rows use for their stored values.
func LowerBound32(d float64) float32 {
	f := float32(d)
	if float64(f) > d {
		f = math.Nextafter32(f, float32(math.Inf(-1)))
	}
	return f
}
