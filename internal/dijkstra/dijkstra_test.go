package dijkstra

import (
	"math"
	"math/rand"
	"testing"

	"skysr/internal/geo"
	"skysr/internal/graph"
)

// randomConnectedGraph builds an undirected graph with n vertices: a random
// spanning tree plus extra random edges, ensuring connectivity.
func randomConnectedGraph(rng *rand.Rand, n, extraEdges int) *graph.Graph {
	b := graph.NewBuilder(false)
	for i := 0; i < n; i++ {
		b.AddVertex(geo.Point{Lon: rng.Float64(), Lat: rng.Float64()})
	}
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		b.AddEdge(graph.VertexID(i), graph.VertexID(j), 1+rng.Float64()*9)
	}
	for e := 0; e < extraEdges; e++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u != v {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v), 1+rng.Float64()*9)
		}
	}
	return b.Build()
}

// floydWarshall computes all-pairs shortest distances by brute force.
func floydWarshall(g *graph.Graph) [][]float64 {
	n := g.NumVertices()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = math.Inf(1)
			}
		}
	}
	for v := 0; v < n; v++ {
		ts, ws := g.Neighbors(graph.VertexID(v))
		for i, t := range ts {
			if ws[i] < d[v][t] {
				d[v][t] = ws[i]
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if nd := d[i][k] + d[k][j]; nd < d[i][j] {
					d[i][j] = nd
				}
			}
		}
	}
	return d
}

func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(30)
		g := randomConnectedGraph(rng, n, n)
		want := floydWarshall(g)
		w := New(g)
		for src := 0; src < n; src++ {
			w.Run(Options{Sources: []graph.VertexID{graph.VertexID(src)}})
			for v := 0; v < n; v++ {
				got, ok := w.Dist(graph.VertexID(v))
				if !ok {
					t.Fatalf("vertex %d unreachable from %d in connected graph", v, src)
				}
				if math.Abs(got-want[src][v]) > 1e-9 {
					t.Fatalf("dist(%d,%d) = %v, want %v", src, v, got, want[src][v])
				}
			}
		}
	}
}

func TestSettleOrderIsAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomConnectedGraph(rng, 50, 80)
	w := New(g)
	last := -1.0
	w.Run(Options{
		Sources: []graph.VertexID{0},
		OnSettle: func(v graph.VertexID, d float64) Control {
			if d < last {
				t.Fatalf("settle order regressed: %v after %v", d, last)
			}
			last = d
			return Continue
		},
	})
}

func TestBoundCutsSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomConnectedGraph(rng, 60, 90)
	w := New(g)
	full := w.Run(Options{Sources: []graph.VertexID{0}})
	// Find the median settled distance to use as a bound.
	var dists []float64
	for v := 0; v < g.NumVertices(); v++ {
		if d, ok := w.Dist(graph.VertexID(v)); ok && w.WasSettled(graph.VertexID(v)) {
			dists = append(dists, d)
		}
	}
	bound := dists[len(dists)/2]
	if bound <= 0 {
		t.Skip("degenerate bound")
	}
	cut := w.Run(Options{Sources: []graph.VertexID{0}, Bound: bound})
	if cut >= full {
		t.Errorf("bounded run settled %d, unbounded %d", cut, full)
	}
	// Every settled vertex must be strictly within the bound.
	for v := 0; v < g.NumVertices(); v++ {
		if w.WasSettled(graph.VertexID(v)) {
			d, _ := w.Dist(graph.VertexID(v))
			if d >= bound {
				t.Errorf("settled vertex %d at %v ≥ bound %v", v, d, bound)
			}
		}
	}
}

func TestStopControl(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomConnectedGraph(rng, 40, 40)
	w := New(g)
	settles := 0
	w.Run(Options{
		Sources: []graph.VertexID{0},
		OnSettle: func(v graph.VertexID, d float64) Control {
			settles++
			if settles == 5 {
				return Stop
			}
			return Continue
		},
	})
	if settles != 5 {
		t.Errorf("settled %d, want stop at 5", settles)
	}
}

func TestSkipExpandBlocksTraversal(t *testing.T) {
	// Line 0-1-2: skipping expansion at 1 must leave 2 unreached.
	b := graph.NewBuilder(false)
	for i := 0; i < 3; i++ {
		b.AddVertex(geo.Point{Lon: float64(i)})
	}
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	g := b.Build()
	w := New(g)
	w.Run(Options{
		Sources: []graph.VertexID{0},
		OnSettle: func(v graph.VertexID, d float64) Control {
			if v == 1 {
				return SkipExpand
			}
			return Continue
		},
	})
	if _, ok := w.Dist(2); ok {
		t.Error("vertex 2 should be unreached when expansion through 1 is skipped")
	}
}

func TestDistanceHelper(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomConnectedGraph(rng, 30, 30)
	want := floydWarshall(g)
	w := New(g)
	for trial := 0; trial < 50; trial++ {
		u := graph.VertexID(rng.Intn(30))
		v := graph.VertexID(rng.Intn(30))
		got := w.Distance(u, v)
		if math.Abs(got-want[u][v]) > 1e-9 {
			t.Fatalf("Distance(%d,%d) = %v, want %v", u, v, got, want[u][v])
		}
	}
	if d := w.Distance(3, 3); d != 0 {
		t.Errorf("Distance(v,v) = %v, want 0", d)
	}
}

func TestDistanceUnreachable(t *testing.T) {
	b := graph.NewBuilder(false)
	b.AddVertex(geo.Point{})
	b.AddVertex(geo.Point{Lon: 1})
	b.AddVertex(geo.Point{Lon: 2})
	b.AddVertex(geo.Point{Lon: 3})
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g := b.Build()
	w := New(g)
	if d := w.Distance(0, 3); !math.IsInf(d, 1) {
		t.Errorf("unreachable Distance = %v, want +Inf", d)
	}
}

func TestMinDistanceMultiSource(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomConnectedGraph(rng, 40, 60)
	want := floydWarshall(g)
	w := New(g)
	sources := []graph.VertexID{0, 7, 13}
	dests := map[graph.VertexID]bool{22: true, 31: true, 5: true}
	gotD, gotAt, ok := w.MinDistance(sources, func(v graph.VertexID) bool { return dests[v] }, 0)
	if !ok {
		t.Fatal("expected a destination")
	}
	best := math.Inf(1)
	for _, s := range sources {
		for d := range dests {
			if want[s][d] < best {
				best = want[s][d]
			}
		}
	}
	if math.Abs(gotD-best) > 1e-9 {
		t.Fatalf("MinDistance = %v at %d, brute force %v", gotD, gotAt, best)
	}
	if !dests[gotAt] {
		t.Errorf("MinDistance settled at non-destination %d", gotAt)
	}
}

func TestMinDistanceBounded(t *testing.T) {
	b := graph.NewBuilder(false)
	for i := 0; i < 3; i++ {
		b.AddVertex(geo.Point{Lon: float64(i)})
	}
	b.AddEdge(0, 1, 5)
	b.AddEdge(1, 2, 5)
	g := b.Build()
	w := New(g)
	_, _, ok := w.MinDistance([]graph.VertexID{0}, func(v graph.VertexID) bool { return v == 2 }, 6)
	if ok {
		t.Error("destination at distance 10 must not be found within bound 6")
	}
	d, at, ok := w.MinDistance([]graph.VertexID{0}, func(v graph.VertexID) bool { return v == 2 }, 11)
	if !ok || at != 2 || math.Abs(d-10) > 1e-9 {
		t.Errorf("bounded MinDistance = (%v, %d, %v), want (10, 2, true)", d, at, ok)
	}
}

func TestPathTo(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomConnectedGraph(rng, 30, 40)
	w := New(g)
	w.Run(Options{Sources: []graph.VertexID{0}})
	for v := graph.VertexID(0); int(v) < g.NumVertices(); v++ {
		path := w.PathTo(v)
		if len(path) == 0 {
			t.Fatalf("no path to %d", v)
		}
		if path[0] != 0 || path[len(path)-1] != v {
			t.Fatalf("path endpoints wrong: %v", path)
		}
		// The path's edge weights must sum to the reported distance.
		sum := 0.0
		for i := 0; i+1 < len(path); i++ {
			wgt, ok := g.EdgeWeight(path[i], path[i+1])
			if !ok {
				t.Fatalf("path uses missing edge %d-%d", path[i], path[i+1])
			}
			sum += wgt
		}
		d, _ := w.Dist(v)
		if math.Abs(sum-d) > 1e-9 {
			t.Fatalf("path length %v != dist %v", sum, d)
		}
	}
}

func TestPathToUnreached(t *testing.T) {
	b := graph.NewBuilder(false)
	b.AddVertex(geo.Point{})
	b.AddVertex(geo.Point{Lon: 1})
	b.AddVertex(geo.Point{Lon: 2})
	b.AddEdge(0, 1, 1)
	g := b.Build()
	w := New(g)
	w.Run(Options{Sources: []graph.VertexID{0}})
	if p := w.PathTo(2); p != nil {
		t.Errorf("PathTo(unreached) = %v, want nil", p)
	}
}

func TestDirectedGraphSearch(t *testing.T) {
	b := graph.NewBuilder(true)
	for i := 0; i < 3; i++ {
		b.AddVertex(geo.Point{Lon: float64(i)})
	}
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 0, 10)
	g := b.Build()
	w := New(g)
	if d := w.Distance(0, 2); math.Abs(d-2) > 1e-9 {
		t.Errorf("directed 0->2 = %v, want 2", d)
	}
	if d := w.Distance(2, 1); math.Abs(d-11) > 1e-9 {
		t.Errorf("directed 2->1 = %v, want 11 (via the back arc)", d)
	}
}

func TestStatsCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomConnectedGraph(rng, 30, 30)
	w := New(g)
	w.Run(Options{Sources: []graph.VertexID{0}})
	if w.RunCount() != 1 || w.SettledCount() == 0 || w.RelaxedCount() == 0 {
		t.Error("stats not recorded")
	}
	if w.LastMaxSettledDist() <= 0 {
		t.Error("max settled distance should be positive")
	}
	w.ResetStats()
	if w.RunCount() != 0 || w.SettledCount() != 0 || w.RelaxedCount() != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestIteratorMatchesWorkspaceOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomConnectedGraph(rng, 40, 60)
	w := New(g)
	var wsOrder []Settled
	w.Run(Options{
		Sources: []graph.VertexID{0},
		OnSettle: func(v graph.VertexID, d float64) Control {
			wsOrder = append(wsOrder, Settled{V: v, Dist: d})
			return Continue
		},
	})
	it := NewIterator(g, 0)
	for i := 0; ; i++ {
		s, ok := it.Next()
		if !ok {
			if i != len(wsOrder) {
				t.Fatalf("iterator exhausted after %d, workspace settled %d", i, len(wsOrder))
			}
			break
		}
		if i >= len(wsOrder) {
			t.Fatalf("iterator produced extra vertex %v", s)
		}
		if math.Abs(s.Dist-wsOrder[i].Dist) > 1e-9 {
			t.Fatalf("iterator settle %d dist %v, workspace %v", i, s.Dist, wsOrder[i].Dist)
		}
	}
}

func TestIteratorResumable(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := randomConnectedGraph(rng, 30, 30)
	it := NewIterator(g, 5)
	var first []Settled
	for i := 0; i < 10; i++ {
		s, ok := it.Next()
		if !ok {
			break
		}
		first = append(first, s)
	}
	// Resume: distances must keep ascending from where we stopped.
	last := first[len(first)-1].Dist
	for {
		s, ok := it.Next()
		if !ok {
			break
		}
		if s.Dist < last {
			t.Fatalf("resumed iterator regressed: %v < %v", s.Dist, last)
		}
		last = s.Dist
	}
	if it.ExploredBytes() <= 0 {
		t.Error("ExploredBytes should be positive")
	}
}

func BenchmarkDijkstraFullGraph(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	g := randomConnectedGraph(rng, 5000, 10000)
	w := New(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(Options{Sources: []graph.VertexID{graph.VertexID(i % 5000)}})
	}
}
