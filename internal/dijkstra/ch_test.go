package dijkstra

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"skysr/internal/geo"
	"skysr/internal/graph"
)

// randomGraph builds a random graph with dyadic weights (exactly
// representable sums), possibly disconnected, directed or not.
func randomGraph(rng *rand.Rand, n int, directed bool, arcFactor float64) *graph.Graph {
	b := graph.NewBuilder(directed)
	for i := 0; i < n; i++ {
		b.AddVertex(geo.Point{Lon: rng.Float64(), Lat: rng.Float64()})
	}
	arcs := int(float64(n) * arcFactor)
	for i := 0; i < arcs; i++ {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		if u == v {
			continue
		}
		// Dyadic weights in [0.25, 64): k/2^8 with k in [64, 16384).
		w := float64(64+rng.Intn(16320)) / 256.0
		b.AddEdge(u, v, w)
	}
	return b.Build()
}

// TestCHBoundMatchesDijkstra is the exactness property test: over random
// directed and undirected graphs with dyadic weights — where AddDown is
// exact — the CH bound must equal the plain Dijkstra distance bit for
// bit, including +Inf for disconnected pairs.
func TestCHBoundMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 12; trial++ {
		directed := trial%2 == 0
		n := 20 + rng.Intn(120)
		// Sparse arc factors leave some pairs disconnected on purpose.
		g := randomGraph(rng, n, directed, 1.0+3.0*rng.Float64())
		ov, err := graph.BuildCH(context.Background(), g, nil)
		if err != nil {
			t.Fatalf("trial %d: BuildCH: %v", trial, err)
		}
		ch := NewCH(ov)
		ws := New(g)
		pairs := 60
		disconnected := 0
		for p := 0; p < pairs; p++ {
			s := graph.VertexID(rng.Intn(n))
			d := graph.VertexID(rng.Intn(n))
			want := ws.Distance(s, d)
			got := ch.Bound(s, d)
			if math.IsInf(want, 1) {
				disconnected++
				if !math.IsInf(got, 1) {
					t.Fatalf("trial %d (directed=%v): %d->%d disconnected but CH bound %v", trial, directed, s, d, got)
				}
				continue
			}
			if got != want {
				t.Fatalf("trial %d (directed=%v): %d->%d CH bound %v != Dijkstra %v", trial, directed, s, d, got, want)
			}
		}
		_ = disconnected
	}
}

// TestCHToAllMatchesReverseDijkstra checks the one-to-many sweep against
// a multi-source Dijkstra on the reversed graph: ToAll must produce the
// same (rounded-down) nearest-source distances for every vertex.
func TestCHToAllMatchesReverseDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		directed := trial%2 == 0
		n := 30 + rng.Intn(100)
		g := randomGraph(rng, n, directed, 1.5+2.5*rng.Float64())
		ov, err := graph.BuildCH(context.Background(), g, nil)
		if err != nil {
			t.Fatalf("trial %d: BuildCH: %v", trial, err)
		}
		ch := NewCH(ov)
		numSrc := 1 + rng.Intn(5)
		srcs := make([]graph.VertexID, 0, numSrc)
		for i := 0; i < numSrc; i++ {
			srcs = append(srcs, graph.VertexID(rng.Intn(n)))
		}
		out := make([]float32, n)
		ch.ToAll(srcs, out)

		rev := New(g.Reversed())
		rev.Run(Options{Sources: srcs})
		for v := 0; v < n; v++ {
			want := math.Inf(1)
			if d, ok := rev.Dist(graph.VertexID(v)); ok {
				want = d
			}
			if math.IsInf(want, 1) {
				if !math.IsInf(float64(out[v]), 1) {
					t.Fatalf("trial %d: vertex %d unreachable but ToAll %v", trial, v, out[v])
				}
				continue
			}
			if out[v] != LowerBound32(want) {
				t.Fatalf("trial %d: vertex %d ToAll %v != reverse Dijkstra %v (rounded %v)", trial, v, out[v], want, LowerBound32(want))
			}
		}
	}
}

// TestCHBoundIsLowerBound uses non-dyadic weights. The f64 bound and the
// plain Dijkstra distance may then differ by association error in either
// direction (plain's sequential sum can round below the real distance
// while the CH sum lands nearer it), so the invariant consumers rely on
// is at float32: LowerBound32(bound) never exceeds the plain distance —
// the 2^-24 slack dominates f64 association error. The f64 values must
// still agree to within a tight relative band.
func TestCHBoundIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	b := graph.NewBuilder(true)
	n := 150
	for i := 0; i < n; i++ {
		b.AddVertex(geo.Point{Lon: rng.Float64(), Lat: rng.Float64()})
	}
	for i := 0; i < 600; i++ {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		if u != v {
			b.AddEdge(u, v, 0.1+rng.Float64()) // arbitrary mantissas
		}
	}
	g := b.Build()
	ov, err := graph.BuildCH(context.Background(), g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ch := NewCH(ov)
	ws := New(g)
	for p := 0; p < 100; p++ {
		s := graph.VertexID(rng.Intn(n))
		d := graph.VertexID(rng.Intn(n))
		want := ws.Distance(s, d)
		got := ch.Bound(s, d)
		if math.IsInf(want, 1) {
			if !math.IsInf(got, 1) {
				t.Fatalf("%d->%d disconnected but bound %v", s, d, got)
			}
			continue
		}
		if lb := float64(LowerBound32(got)); lb > want {
			t.Fatalf("%d->%d rounded bound %v exceeds distance %v", s, d, lb, want)
		}
		if got > want*(1+1e-12) {
			t.Fatalf("%d->%d bound %v far above distance %v", s, d, got, want)
		}
		if got < want*(1-1e-9) {
			t.Fatalf("%d->%d bound %v too loose for distance %v", s, d, got, want)
		}
	}
}

func TestLowerBound32(t *testing.T) {
	cases := []float64{0, 1, 1.5, math.Pi, 1e-30, 12345.6789, math.Inf(1)}
	for _, d := range cases {
		f := LowerBound32(d)
		if float64(f) > d {
			t.Fatalf("LowerBound32(%v) = %v rounds up", d, f)
		}
	}
}
