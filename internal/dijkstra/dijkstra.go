// Package dijkstra implements the shortest-path machinery the paper's
// algorithms are built from: bounded single-source searches (the skeleton
// of Algorithm 2), multi-source multi-destination searches (Algorithm 4,
// Lemma 5.9), an incremental nearest-neighbour iterator (the primitive
// behind the PNE baseline), and path reconstruction for presenting final
// routes.
//
// A Workspace amortizes the per-search arrays across the many Dijkstra
// executions a single SkySR query performs (the paper counts hundreds,
// Figure 5): arrays are epoch-stamped so resetting between runs is O(1).
package dijkstra

import (
	"math"

	"skysr/internal/graph"
	"skysr/internal/pq"
)

// Control tells Run how to proceed after settling a vertex.
type Control int

const (
	// Continue settles the vertex and relaxes its out-edges.
	Continue Control = iota
	// SkipExpand settles the vertex but does not relax its out-edges
	// (Lemma 5.5: do not traverse through a perfectly matching PoI).
	SkipExpand
	// Stop terminates the search immediately.
	Stop
)

// Settled is a vertex together with its final shortest-path distance.
type Settled struct {
	V    graph.VertexID
	Dist float64
}

// Options configures one Run.
type Options struct {
	// Sources are settled at distance zero. Multiple sources give the
	// multi-source search of Lemma 5.9.
	Sources []graph.VertexID
	// Bound, when positive, stops the search as soon as the next settled
	// distance is ≥ Bound (the Lemma 5.3 cut in Algorithm 2 line 8).
	// Zero or negative means unbounded.
	Bound float64
	// OnSettle, when non-nil, observes every settled vertex in ascending
	// distance order and steers the search.
	OnSettle func(v graph.VertexID, d float64) Control

	// Halt, when non-nil, is polled once per heap pop; a true return
	// aborts the search immediately, like Stop but from outside the
	// OnSettle steering. Query cancellation and deadlines thread through
	// here: the core installs its amortized cancellation check so every
	// search a query runs — NNinit stages, lower-bound sweeps,
	// destination tables, leg pricing — unwinds within one check stride
	// of the cancel. A halted run's distances are partial; callers must
	// not treat them as complete.
	Halt func() bool

	// Metric, when non-nil and time-dependent, switches relaxation to
	// cost-at-arrival evaluation: the arc u→t costs
	// Metric.Cost(arc, DepartAt + dist(u)). Settled distances are then
	// travel times from the sources. Label-setting Dijkstra stays exact
	// because profiles are FIFO (graph.Profile.Validate enforces it). A
	// nil or static Metric relaxes against the graph's weight column —
	// the metric's lower-bound graph — exactly as before.
	Metric graph.Metric
	// DepartAt is the absolute departure time at the sources; only
	// meaningful with a time-dependent Metric.
	DepartAt float64
}

// Workspace holds the reusable state for searches over one graph. It is
// not safe for concurrent use.
type Workspace struct {
	g       *graph.Graph
	dist    []float64
	parent  []graph.VertexID
	stamp   []uint32
	settled []uint32
	epoch   uint32
	heap    *pq.IndexedHeap

	// stats
	settledCount  int64
	relaxedCount  int64
	runCount      int64
	lastMaxSettle float64
}

// New returns a Workspace for g.
func New(g *graph.Graph) *Workspace {
	n := g.NumVertices()
	return &Workspace{
		g:       g,
		dist:    make([]float64, n),
		parent:  make([]graph.VertexID, n),
		stamp:   make([]uint32, n),
		settled: make([]uint32, n),
		heap:    pq.NewIndexedHeap(n),
	}
}

// Graph returns the graph the workspace searches.
func (w *Workspace) Graph() *graph.Graph { return w.g }

// SettledCount returns the total number of vertices settled across all
// runs (the Table 8 "number of visited vertices" metric).
func (w *Workspace) SettledCount() int64 { return w.settledCount }

// RelaxedCount returns the total number of edge relaxations attempted.
func (w *Workspace) RelaxedCount() int64 { return w.relaxedCount }

// RunCount returns the number of Run invocations (the Figure 5 "number of
// Dijkstra executions" metric).
func (w *Workspace) RunCount() int64 { return w.runCount }

// LastMaxSettledDist returns the largest distance settled by the most
// recent run — the explored radius, the paper's "weight sum" proxy for
// search space (Table 7).
func (w *Workspace) LastMaxSettledDist() float64 { return w.lastMaxSettle }

// ResetStats zeroes the cumulative counters.
func (w *Workspace) ResetStats() {
	w.settledCount = 0
	w.relaxedCount = 0
	w.runCount = 0
	w.lastMaxSettle = 0
}

// Run executes one Dijkstra search and returns the number of settled
// vertices. Distances and parents of the run remain queryable via Dist and
// PathTo until the next Run.
func (w *Workspace) Run(opts Options) int {
	w.epoch++
	if w.epoch == 0 {
		// The epoch wrapped: stamps written 2^32 runs ago could collide
		// with the new epoch. Workspaces now outlive single queries (they
		// are pooled), so a long-running server does reach this.
		clear(w.stamp)
		clear(w.settled)
		w.epoch = 1
	}
	w.runCount++
	w.lastMaxSettle = 0
	w.heap.Reset()
	md := opts.Metric
	if md != nil && !md.TimeDependent() {
		md = nil // a static metric is exactly the weight column
	}
	bound := opts.Bound
	if bound <= 0 {
		bound = math.Inf(1)
	}
	for _, s := range opts.Sources {
		w.dist[s] = 0
		w.parent[s] = graph.NoVertex
		w.stamp[s] = w.epoch
		w.heap.PushOrDecrease(s, 0)
	}
	count := 0
	for w.heap.Len() > 0 {
		if opts.Halt != nil && opts.Halt() {
			break
		}
		v, d := w.heap.Pop()
		if d >= bound {
			break
		}
		w.settled[v] = w.epoch
		w.settledCount++
		count++
		w.lastMaxSettle = d

		ctrl := Continue
		if opts.OnSettle != nil {
			ctrl = opts.OnSettle(v, d)
		}
		if ctrl == Stop {
			break
		}
		if ctrl == SkipExpand {
			continue
		}
		ts, ws := w.g.Neighbors(v)
		var base int32
		if md != nil {
			base = w.g.ArcBase(v)
		}
		for i, t := range ts {
			if w.settled[t] == w.epoch {
				continue
			}
			cost := ws[i]
			if md != nil {
				cost = md.Cost(base+int32(i), opts.DepartAt+d)
			}
			nd := d + cost
			w.relaxedCount++
			if nd >= bound {
				continue
			}
			if w.stamp[t] != w.epoch || nd < w.dist[t] {
				w.dist[t] = nd
				w.parent[t] = v
				w.stamp[t] = w.epoch
				w.heap.PushOrDecrease(t, nd)
			}
		}
	}
	return count
}

// Dist returns the distance of v computed by the most recent Run and
// whether v was reached (settled or still queued with a tentative value;
// for settled vertices the value is final).
func (w *Workspace) Dist(v graph.VertexID) (float64, bool) {
	if w.stamp[v] != w.epoch {
		return 0, false
	}
	return w.dist[v], true
}

// WasSettled reports whether v was settled by the most recent Run.
func (w *Workspace) WasSettled(v graph.VertexID) bool {
	return w.settled[v] == w.epoch
}

// PathTo reconstructs the vertex path from the (nearest) source to v for
// the most recent Run. It returns nil when v was not reached.
func (w *Workspace) PathTo(v graph.VertexID) []graph.VertexID {
	if w.stamp[v] != w.epoch {
		return nil
	}
	var rev []graph.VertexID
	for cur := v; cur != graph.NoVertex; cur = w.parent[cur] {
		rev = append(rev, cur)
		if w.parent[cur] != graph.NoVertex && w.stamp[w.parent[cur]] != w.epoch {
			return nil // defensive: broken parent chain
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Distance returns the network distance D(u, v) (Definition 3.5), or +Inf
// when v is unreachable from u. The search stops as soon as v settles.
func (w *Workspace) Distance(u, v graph.VertexID) float64 {
	if u == v {
		return 0
	}
	found := math.Inf(1)
	w.Run(Options{
		Sources: []graph.VertexID{u},
		OnSettle: func(x graph.VertexID, d float64) Control {
			if x == v {
				found = d
				return Stop
			}
			return Continue
		},
	})
	return found
}

// MinDistance runs the multi-source multi-destination search of Algorithm
// 4: all sources start at distance zero and the search stops at the first
// settled vertex for which isDest returns true (Lemma 5.9 guarantees it is
// the closest). bound limits the explored radius (≤ 0 for unbounded). ok is
// false when no destination lies within the bound.
func (w *Workspace) MinDistance(sources []graph.VertexID, isDest func(v graph.VertexID) bool, bound float64) (d float64, at graph.VertexID, ok bool) {
	at = graph.NoVertex
	w.Run(Options{
		Sources: sources,
		Bound:   bound,
		OnSettle: func(v graph.VertexID, dist float64) Control {
			if isDest(v) {
				d, at, ok = dist, v, true
				return Stop
			}
			return Continue
		},
	})
	return d, at, ok
}
