package skysr

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program and checks the key fact
// each one documents, so the examples cannot silently rot. Skipped in
// -short mode (each run compiles a binary).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are skipped in -short mode")
	}
	cases := map[string][]string{
		"batch": {
			"40 queries",
			"batch answers match the serial answers",
		},
		"quickstart": {
			"2 skyline sequenced routes",
			"length 10.5", // Table 4: ⟨p6,p9,p8⟩
			"length 13.0", // Table 4: ⟨p10,p12,p13⟩
		},
		"nyctrip": {
			"Cupcake Shop",
			"semantic 0.000", // the exact-match route is present
		},
		"tokyonight": {
			"Beer Garden",
			"Sake Bar",
		},
		"unordered": {
			"saves 1000 distance units",
		},
		"flexquery": {
			"perfect match",
		},
		"ratedcafe": {
			"rating penalty 0.100", // the five-star café's route
		},
	}
	for name, wants := range cases {
		name, wants := name, wants
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+name)
			cmd.Dir = "."
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			for _, want := range wants {
				if !strings.Contains(string(out), want) {
					t.Errorf("example %s output missing %q:\n%s", name, want, out)
				}
			}
		})
	}
}
