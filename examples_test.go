package skysr

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesCompile type-checks every example program (and the cmd
// tools) in one pass. Unlike TestExamplesRun it is cheap enough to keep in
// -short mode, so `go test -short ./...` still catches an example drifting
// off the public API.
func TestExamplesCompile(t *testing.T) {
	cmd := exec.Command("go", "build", "./examples/...", "./cmd/...")
	cmd.Dir = "."
	cmd.Env = append(os.Environ(), "GOBIN=")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("examples failed to compile: %v\n%s", err, out)
	}
}

// TestExamplesRun executes every example program and checks the key fact
// each one documents, so the examples cannot silently rot. Skipped in
// -short mode (each run compiles a binary).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are skipped in -short mode")
	}
	cases := map[string][]string{
		"batch": {
			"40 queries",
			"batch answers match the serial answers",
		},
		"quickstart": {
			"2 skyline sequenced routes",
			"length 10.5", // Table 4: ⟨p6,p9,p8⟩
			"length 13.0", // Table 4: ⟨p10,p12,p13⟩
		},
		"nyctrip": {
			"Cupcake Shop",
			"semantic 0.000", // the exact-match route is present
		},
		"tokyonight": {
			"Beer Garden",
			"Sake Bar",
		},
		"unordered": {
			"saves 1000 distance units",
		},
		"flexquery": {
			"perfect match",
		},
		"ratedcafe": {
			"rating penalty 0.100", // the five-star café's route
		},
		"liveupdate": {
			"epoch 2",         // both update batches published
			"12 rows carried", // weight increase carried every index row
			"2 repaired",      // the closure dirtied only the sushi ancestors
			"1 snapshot(s) live",
		},
		"topk": {
			"classic skyline: 3 route(s)",
			"top-5: 8 ranked route(s) over 3 similarity level(s)",
			"all 3 skyline route(s) kept among the top-5 alternatives",
		},
	}
	for name, wants := range cases {
		name, wants := name, wants
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+name)
			cmd.Dir = "."
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			for _, want := range wants {
				if !strings.Contains(string(out), want) {
					t.Errorf("example %s output missing %q:\n%s", name, want, out)
				}
			}
		})
	}
}
