package skysr

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"skysr/internal/graph"
	"skysr/internal/route"
	"skysr/internal/taxonomy"
	"skysr/internal/topk"
)

// topKProfiles are the serving profiles the top-k satellites verify:
// plain, ShareCache, tree-index and category-index.
func topKProfiles() map[string]SearchOptions {
	return map[string]SearchOptions{
		"plain":          {},
		"share-cache":    {ShareCache: true},
		"tree-index":     {UseIndex: true},
		"category-index": {UseCategoryIndex: true},
	}
}

// TestSearchTopKOneIsSearch is the acceptance-criterion property:
// SearchTopK(q, 1, opts) must be byte-identical to SearchWith(q, opts) —
// same PoIs, names, ranks, paths, bit-equal scores — on every preset and
// serving profile, and under SearchBatch.
func TestSearchTopKOneIsSearch(t *testing.T) {
	for _, preset := range Presets() {
		preset := preset
		t.Run(preset, func(t *testing.T) {
			t.Parallel()
			eng, err := Generate(preset, 0.05, 7)
			if err != nil {
				t.Fatal(err)
			}
			queries, err := eng.Workload(6, 3, 5)
			if err != nil {
				t.Fatal(err)
			}
			queries[len(queries)-1].Unordered = true
			for name, opts := range topKProfiles() {
				opts.ExpandPaths = true
				for i, q := range queries {
					if q.Unordered {
						opts.ExpandPaths = false // paths need the ordered expander
					}
					want, err := eng.SearchWith(q, opts)
					if err != nil {
						t.Fatalf("%s query %d: %v", name, i, err)
					}
					got, err := eng.SearchTopK(q, 1, opts)
					if err != nil {
						t.Fatalf("%s query %d top-1: %v", name, i, err)
					}
					if !reflect.DeepEqual(got.Routes, want.Routes) {
						t.Errorf("%s query %d: top-1 routes differ\n got: %v\nwant: %v",
							name, i, got.Routes, want.Routes)
					}
				}
			}
			// Batch answers with TopK=1 must match the serial SearchTopK.
			serial := make([]*Answer, len(queries))
			for i, q := range queries {
				serial[i], err = eng.SearchTopK(q, 1, SearchOptions{UseCategoryIndex: true})
				if err != nil {
					t.Fatal(err)
				}
			}
			batch, err := eng.SearchBatch(queries, BatchOptions{
				Workers: 3,
				Options: SearchOptions{UseCategoryIndex: true, TopK: 1},
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range batch {
				if !reflect.DeepEqual(batch[i].Routes, serial[i].Routes) {
					t.Errorf("batch query %d: top-1 routes differ from serial", i)
				}
			}
		})
	}
}

// dyadicEngine builds a random connected network like randomEngine, but
// with dyadic edge weights (multiples of 1/16): every route length is
// then a sum of exactly representable values whose result is independent
// of addition order, so the brute-force enumerator and the search cannot
// disagree by an ULP on whether two routes share a score point.
func dyadicEngine(t *testing.T, rng *rand.Rand, directed bool, vertices, pois int) (*Engine, []string) {
	t.Helper()
	tb, leaves, _ := randomTaxonomy(3, 2, 2)
	var nb *NetworkBuilder
	if directed {
		nb = NewDirectedNetworkBuilder("topk-prop", tb)
	} else {
		nb = NewNetworkBuilder("topk-prop", tb)
	}
	for i := 0; i < vertices; i++ {
		nb.AddVertex(rng.Float64(), rng.Float64())
	}
	w := func() float64 { return float64(1+rng.Intn(144)) / 16.0 }
	addRoad := func(u, v VertexID) {
		if err := nb.AddRoad(u, v, w()); err != nil {
			t.Fatal(err)
		}
		if directed {
			if err := nb.AddRoad(v, u, w()); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 1; i < vertices; i++ {
		addRoad(VertexID(i), VertexID(rng.Intn(i)))
	}
	for i := 0; i < pois; i++ {
		attach := VertexID(rng.Intn(vertices))
		cats := []string{leaves[rng.Intn(len(leaves))]}
		if rng.Intn(4) == 0 {
			cats = append(cats, leaves[rng.Intn(len(leaves))])
		}
		p, err := nb.AddPoI(rng.Float64(), rng.Float64(), cats...)
		if err != nil {
			t.Fatal(err)
		}
		addRoad(attach, p)
	}
	eng, err := nb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return eng, leaves
}

// answerPoints projects an Answer onto its score points.
func answerPoints(ans *Answer) []topk.Point {
	out := make([]topk.Point, len(ans.Routes))
	for i, r := range ans.Routes {
		out[i] = topk.Point{Length: r.LengthScore, Semantic: r.SemanticScore}
	}
	return out
}

// checkRankedAnswer asserts the satellite invariants of a top-k answer:
// ranks are 1..n, the list is sorted by ascending length (ties by
// semantic), score points are duplicate-free and no PoI sequence repeats.
func checkRankedAnswer(t *testing.T, ctx string, ans *Answer) {
	t.Helper()
	seenPoint := map[topk.Point]bool{}
	seenPoIs := map[string]bool{}
	for i, r := range ans.Routes {
		if r.Rank != i+1 {
			t.Errorf("%s: route %d has rank %d", ctx, i, r.Rank)
		}
		if i > 0 {
			prev := ans.Routes[i-1]
			if r.LengthScore < prev.LengthScore ||
				(r.LengthScore == prev.LengthScore && r.SemanticScore < prev.SemanticScore) {
				t.Errorf("%s: routes not sorted at %d: %v after %v", ctx, i, r, prev)
			}
		}
		p := topk.Point{Length: r.LengthScore, Semantic: r.SemanticScore}
		if seenPoint[p] {
			t.Errorf("%s: duplicate score point %v", ctx, p)
		}
		seenPoint[p] = true
		key := fmt.Sprint(r.PoIs)
		if seenPoIs[key] {
			t.Errorf("%s: duplicate PoI sequence %s", ctx, key)
		}
		seenPoIs[key] = true
	}
}

// TestSearchTopKMatchesBruteForce verifies exactness on small random
// graphs: for every k, the (length, semantic) points SearchTopK returns
// must equal the brute-force k-skyband over all valid routes, every
// serving profile must agree bit-exactly with the plain profile, ranked
// lists must be sorted and duplicate-free, and growing k must never lose
// a point (monotonicity).
func TestSearchTopKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, directed := range []bool{false, true} {
		for trial := 0; trial < 4; trial++ {
			eng, leaves := dyadicEngine(t, rng, directed, 40, 14)
			ds := eng.internalDataset()
			for _, seqLen := range []int{2, 3} {
				cats := make([]taxonomy.CategoryID, seqLen)
				via := make([]Requirement, seqLen)
				for i := range cats {
					name := leaves[rng.Intn(len(leaves))]
					c, ok := ds.Forest.Lookup(name)
					if !ok {
						t.Fatalf("unknown leaf %q", name)
					}
					cats[i] = c
					via[i] = Category(name)
				}
				start := VertexID(rng.Intn(40))
				seq := route.NewCategorySequence(ds.Forest, ds.Forest.WuPalmer, cats...)
				q := Query{Start: start, Via: via}
				var prev []topk.Point
				for _, k := range []int{1, 2, 3, 5} {
					want := topk.BruteForce(ds, start, seq, k, Product, graph.NoVertex)
					base, err := eng.SearchTopK(q, k, SearchOptions{})
					if err != nil {
						t.Fatal(err)
					}
					ctx := fmt.Sprintf("directed=%v trial=%d len=%d k=%d", directed, trial, seqLen, k)
					checkRankedAnswer(t, ctx, base)
					got := answerPoints(base)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s: points %v, brute force wants %v", ctx, got, want)
					}
					for name, opts := range topKProfiles() {
						ans, err := eng.SearchTopK(q, k, opts)
						if err != nil {
							t.Fatalf("%s %s: %v", ctx, name, err)
						}
						if !reflect.DeepEqual(ans.Routes, base.Routes) {
							t.Fatalf("%s: profile %s differs from plain\n got: %v\nwant: %v",
								ctx, name, ans.Routes, base.Routes)
						}
					}
					// BSSRNoOpt must enumerate the same band.
					noOpt, err := eng.SearchTopK(q, k, SearchOptions{Algorithm: BSSRNoOpt})
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(answerPoints(noOpt), want) {
						t.Fatalf("%s: BSSRNoOpt points %v, want %v", ctx, answerPoints(noOpt), want)
					}
					for _, p := range prev {
						found := false
						for _, qpt := range got {
							if qpt == p {
								found = true
								break
							}
						}
						if !found {
							t.Fatalf("%s: point %v lost when k grew", ctx, p)
						}
					}
					prev = got
				}
			}
		}
	}
}

// TestSearchTopKDestination verifies the §6 destination variant against
// the brute-force enumerator with the final leg included.
func TestSearchTopKDestination(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	eng, leaves := dyadicEngine(t, rng, false, 36, 12)
	ds := eng.internalDataset()
	for trial := 0; trial < 6; trial++ {
		name := leaves[rng.Intn(len(leaves))]
		c, _ := ds.Forest.Lookup(name)
		start := VertexID(rng.Intn(36))
		dest := VertexID(rng.Intn(36))
		seq := route.NewCategorySequence(ds.Forest, ds.Forest.WuPalmer, c, c)
		q := Query{Start: start, Via: []Requirement{Category(name), Category(name)},
			Destination: dest, HasDestination: true}
		for _, k := range []int{1, 2, 4} {
			want := topk.BruteForce(ds, start, seq, k, Product, dest)
			ans, err := eng.SearchTopK(q, k, SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if got := answerPoints(ans); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d k=%d: points %v, want %v", trial, k, got, want)
			}
		}
	}
}

// TestSearchTopKUnordered verifies the unordered (trip-planning) variant:
// the band must equal the brute-force band over every visit order.
func TestSearchTopKUnordered(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	eng, leaves := dyadicEngine(t, rng, false, 36, 12)
	ds := eng.internalDataset()
	for trial := 0; trial < 5; trial++ {
		a := leaves[rng.Intn(len(leaves))]
		b := leaves[rng.Intn(len(leaves))]
		ca, _ := ds.Forest.Lookup(a)
		cb, _ := ds.Forest.Lookup(b)
		start := VertexID(rng.Intn(36))
		q := Query{Start: start, Via: []Requirement{Category(a), Category(b)}, Unordered: true}
		for _, k := range []int{1, 2, 3} {
			// Brute force over both visit orders, then take the band of the
			// union of achieved points (BruteForce already bands per order,
			// and banding a union of per-order bands equals banding the
			// union of all points: any point a per-order band drops has k
			// dominators in that order's points, which survive into the
			// union's band argument transitively).
			fwd := topk.BruteForce(ds, start, route.NewCategorySequence(ds.Forest, ds.Forest.WuPalmer, ca, cb), k, Product, graph.NoVertex)
			rev := topk.BruteForce(ds, start, route.NewCategorySequence(ds.Forest, ds.Forest.WuPalmer, cb, ca), k, Product, graph.NoVertex)
			want := topk.Band(append(append([]topk.Point(nil), fwd...), rev...), k)
			ans, err := eng.SearchTopK(q, k, SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if got := answerPoints(ans); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d k=%d (%s,%s): points %v, want %v", trial, k, a, b, got, want)
			}
		}
	}
}

// TestSearchTopKStats: a k > 1 run reports its k, counts the extra pops
// it performs past the k=1 threshold, and records the band's levels.
func TestSearchTopKStats(t *testing.T) {
	eng, err := Generate("tokyo", 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := eng.Workload(4, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		one, err := eng.SearchTopK(q, 1, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if one.Stats.TopK != 1 || one.Stats.TopKExtraPops != 0 || one.Stats.TopKLevels != 0 {
			t.Fatalf("k=1 stats polluted: %+v", one.Stats)
		}
		five, err := eng.SearchTopK(q, 5, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if five.Stats.TopK != 5 {
			t.Fatalf("k=5 run reports TopK %d", five.Stats.TopK)
		}
		if five.Stats.TopKLevels < 1 || five.Stats.TopKLevels > len(five.Routes) {
			t.Fatalf("implausible TopKLevels %d for %d routes", five.Stats.TopKLevels, len(five.Routes))
		}
		if len(five.Routes) < len(one.Routes) {
			t.Fatalf("k=5 returned fewer routes (%d) than k=1 (%d)", len(five.Routes), len(one.Routes))
		}
	}
}

// TestSearchTopKErrors covers the argument validation.
func TestSearchTopKErrors(t *testing.T) {
	eng, _, cats := PaperExample()
	q := Query{Start: 0, Via: []Requirement{Category(cats[0])}}
	if _, err := eng.SearchTopK(q, 0, SearchOptions{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := eng.SearchWith(q, SearchOptions{TopK: -1}); err == nil {
		t.Error("negative TopK accepted")
	}
	if _, err := eng.SearchTopK(q, MaxTopK+1, SearchOptions{}); err == nil {
		t.Error("TopK above MaxTopK accepted")
	}
	if _, err := eng.SearchTopK(q, 2, SearchOptions{Algorithm: NaiveDijkstra}); err == nil {
		t.Error("top-k accepted for a naive baseline")
	}
	rq := q
	rq.IncludeRatings = true
	if _, err := eng.SearchTopK(rq, 2, SearchOptions{}); err == nil {
		t.Error("top-k accepted with IncludeRatings")
	}
	if _, err := eng.SearchTopK(q, 2, SearchOptions{}); err != nil {
		t.Errorf("plain top-2 rejected: %v", err)
	}
}
