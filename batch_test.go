package skysr

import (
	"context"
	"strings"
	"testing"
)

// answersEqual compares the score vectors of two answers.
func answersEqual(a, b *Answer) bool {
	if len(a.Routes) != len(b.Routes) {
		return false
	}
	for i := range a.Routes {
		if a.Routes[i].LengthScore != b.Routes[i].LengthScore ||
			a.Routes[i].SemanticScore != b.Routes[i].SemanticScore {
			return false
		}
	}
	return true
}

// TestSearchBatchMatchesSerial: SearchBatch must return, in order, exactly
// the answers a serial Search loop produces — across worker counts and
// under mixed index options (run under -race; this also races the lazy
// index and per-category row builds, the hop-bound cache, and the shared
// m-Dijkstra cache).
func TestSearchBatchMatchesSerial(t *testing.T) {
	eng, err := Generate("tokyo", 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := eng.Workload(30, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Mixed options: rotate through no-index, tree-index and
	// category-index across the batch.
	perQuery := make([]SearchOptions, len(queries))
	for i := range perQuery {
		perQuery[i] = SearchOptions{UseIndex: i%3 == 0, UseCategoryIndex: i%3 == 1}
	}
	want := make([]*Answer, len(queries))
	for i, q := range queries {
		if want[i], err = eng.SearchWith(q, perQuery[i]); err != nil {
			t.Fatal(err)
		}
	}

	for _, workers := range []int{0, 1, 4, 8} {
		got, err := eng.SearchBatch(queries, BatchOptions{Workers: workers, PerQuery: perQuery})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d answers, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] == nil {
				t.Fatalf("workers=%d: answer %d missing", workers, i)
			}
			if !answersEqual(got[i], want[i]) {
				t.Errorf("workers=%d: answer %d differs from serial Search", workers, i)
			}
		}
	}
}

// TestSearchBatchPaperExample pins the batch path to the paper's Table 4
// ground truth, duplicated many times so every worker sees the query.
func TestSearchBatchPaperExample(t *testing.T) {
	eng, vq, catNames := PaperExample()
	via := make([]Requirement, len(catNames))
	for i, n := range catNames {
		via[i] = Category(n)
	}
	queries := make([]Query, 16)
	for i := range queries {
		queries[i] = Query{Start: vq, Via: via}
	}
	answers, err := eng.SearchBatch(queries, BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, ans := range answers {
		if len(ans.Routes) != 2 {
			t.Fatalf("answer %d: %d routes, want 2 (Table 4)", i, len(ans.Routes))
		}
		if ans.Routes[0].LengthScore != 10.5 || ans.Routes[1].LengthScore != 13 {
			t.Errorf("answer %d lengths = %v, %v; want 10.5, 13",
				i, ans.Routes[0].LengthScore, ans.Routes[1].LengthScore)
		}
	}
}

// TestSearchBatchErrors: option/length mismatches and failing queries
// surface as errors, fail-fast with the query index.
func TestSearchBatchErrors(t *testing.T) {
	eng, vq, catNames := PaperExample()
	via := []Requirement{Category(catNames[0])}
	good := Query{Start: vq, Via: via}

	if _, err := eng.SearchBatch([]Query{good}, BatchOptions{PerQuery: []SearchOptions{{}, {}}}); err == nil {
		t.Error("PerQuery length mismatch not rejected")
	}
	if answers, err := eng.SearchBatch(nil, BatchOptions{}); err != nil || len(answers) != 0 {
		t.Errorf("empty batch: %v, %v", answers, err)
	}
	bad := Query{Start: vq, Via: []Requirement{Category("No Such Category")}}
	_, err := eng.SearchBatch([]Query{good, bad, good}, BatchOptions{Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "query 1") {
		t.Errorf("bad query error = %v, want it to name query 1", err)
	}
}

// TestSearchBatchCancellation: a cancelled context abandons the batch and
// surfaces the context error (servers pass the request context so
// disconnected clients stop consuming workers).
func TestSearchBatchCancellation(t *testing.T) {
	eng, vq, catNames := PaperExample()
	via := make([]Requirement, len(catNames))
	for i, n := range catNames {
		via[i] = Category(n)
	}
	queries := make([]Query, 64)
	for i := range queries {
		queries[i] = Query{Start: vq, Via: via}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: no query should be charged to the caller
	_, err := eng.SearchBatch(queries, BatchOptions{Workers: 2, Context: ctx})
	if err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Errorf("cancelled batch error = %v", err)
	}

	// A live context behaves as before.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	answers, err := eng.SearchBatch(queries[:4], BatchOptions{Workers: 2, Context: ctx2})
	if err != nil || len(answers) != 4 {
		t.Fatalf("live-context batch: %v, %d answers", err, len(answers))
	}
}
