package skysr

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// updateProfiles are the serving profiles the update-correctness tests
// sweep; exactness must survive updates under every one of them.
var updateProfiles = map[string]SearchOptions{
	"baseline":       {},
	"tree-index":     {UseIndex: true},
	"category-index": {UseCategoryIndex: true},
	"share-cache":    {ShareCache: true},
}

// answersMatch compares two answers route for route (PoI ids and bit-equal
// scores).
func answersMatch(a, b *Answer) bool {
	if len(a.Routes) != len(b.Routes) {
		return false
	}
	for i := range a.Routes {
		ra, rb := a.Routes[i], b.Routes[i]
		if ra.LengthScore != rb.LengthScore || ra.SemanticScore != rb.SemanticScore {
			return false
		}
		if len(ra.PoIs) != len(rb.PoIs) {
			return false
		}
		for j := range ra.PoIs {
			if ra.PoIs[j] != rb.PoIs[j] {
				return false
			}
		}
	}
	return true
}

// randomBatch builds a deterministic mixed update batch against e's
// current dataset: weight changes (increases and decreases), an edge
// addition and removal, and PoI add/remove/recategorize.
func randomBatch(e *Engine, rng *rand.Rand, structural bool) *UpdateBatch {
	ds := e.snap().ds
	g := ds.Graph
	b := new(UpdateBatch)

	touched := map[[2]VertexID]bool{}
	pickEdge := func() (VertexID, VertexID, float64, bool) {
		for tries := 0; tries < 50; tries++ {
			u := VertexID(rng.Intn(g.NumVertices()))
			ts, ws := g.Neighbors(u)
			if len(ts) == 0 {
				continue
			}
			i := rng.Intn(len(ts))
			v := ts[i]
			key := [2]VertexID{u, v}
			if u > v {
				key = [2]VertexID{v, u}
			}
			if touched[key] {
				continue
			}
			touched[key] = true
			return u, ts[i], ws[i], true
		}
		return 0, 0, 0, false
	}

	for i := 0; i < 4; i++ {
		if u, v, w, ok := pickEdge(); ok {
			factor := 0.5 + rng.Float64()*1.5 // both decreases and increases
			b.SetEdgeWeight(u, v, w*factor)
		}
	}
	if structural {
		if u, v, _, ok := pickEdge(); ok {
			b.RemoveEdge(u, v)
		}
		for tries := 0; tries < 50; tries++ {
			u := VertexID(rng.Intn(g.NumVertices()))
			v := VertexID(rng.Intn(g.NumVertices()))
			if u != v {
				b.AddEdge(u, v, 0.1+rng.Float64())
				break
			}
		}
	}

	leaves := e.LeafCategories()
	pois := g.PoIVertices()
	if len(pois) > 2 {
		b.RemovePoI(pois[rng.Intn(len(pois))])
		p := pois[rng.Intn(len(pois))]
		for b.poiOps[len(b.poiOps)-1].v == p { // distinct vertex per batch
			p = pois[rng.Intn(len(pois))]
		}
		b.Recategorize(p, leaves[rng.Intn(len(leaves))])
	}
	for tries := 0; tries < 50; tries++ {
		v := VertexID(rng.Intn(g.NumVertices()))
		if !g.IsPoI(v) {
			b.AddPoI(v, leaves[rng.Intn(len(leaves))])
			break
		}
	}
	return b
}

// TestApplyUpdatesMatchesFreshEngine is the core exactness property of the
// live-update engine: after any update batch, answers on the new epoch are
// identical — across every serving profile — to a fresh engine built from
// the mutated dataset's serialization.
func TestApplyUpdatesMatchesFreshEngine(t *testing.T) {
	for _, structural := range []bool{false, true} {
		structural := structural
		t.Run(fmt.Sprintf("structural=%v", structural), func(t *testing.T) {
			eng, err := Generate("tokyo", 0.1, 7)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(99))
			for round := 0; round < 3; round++ {
				if _, err := eng.ApplyUpdates(randomBatch(eng, rng, structural)); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
			}
			if eng.Epoch() != 3 {
				t.Fatalf("epoch = %d, want 3", eng.Epoch())
			}

			var buf bytes.Buffer
			if err := eng.Write(&buf); err != nil {
				t.Fatal(err)
			}
			fresh, err := Read(&buf)
			if err != nil {
				t.Fatal(err)
			}

			queries, err := eng.Workload(12, 3, 5)
			if err != nil {
				t.Fatal(err)
			}
			for name, opts := range updateProfiles {
				for i, q := range queries {
					got, err := eng.SearchWith(q, opts)
					if err != nil {
						t.Fatalf("%s query %d on updated engine: %v", name, i, err)
					}
					want, err := fresh.SearchWith(q, opts)
					if err != nil {
						t.Fatalf("%s query %d on fresh engine: %v", name, i, err)
					}
					if !answersMatch(got, want) {
						t.Errorf("%s query %d: updated-engine answer differs from fresh engine\ngot:  %+v\nwant: %+v",
							name, i, got.Routes, want.Routes)
					}
				}
			}
		})
	}
}

// TestApplyUpdatesTakesEffect: a weight change must actually change the
// answer, and the PoI lifecycle edits must add and remove candidates.
func TestApplyUpdatesTakesEffect(t *testing.T) {
	eng, err := buildUpdateFixture()
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Start: 0, Via: []Requirement{Category("Sushi Restaurant")}}
	ans, err := eng.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Routes) != 1 || ans.Routes[0].PoIs[0] != 2 || ans.Routes[0].LengthScore != 3 {
		t.Fatalf("pre-update answer = %+v, want PoI 2 at length 3", ans.Routes)
	}

	res, err := eng.ApplyUpdates(new(UpdateBatch).SetEdgeWeight(0, 2, 10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 || eng.Epoch() != 1 {
		t.Fatalf("epoch = %d/%d, want 1", res.Epoch, eng.Epoch())
	}
	ans, err = eng.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Routes) != 1 || ans.Routes[0].PoIs[0] != 1 || ans.Routes[0].LengthScore != 5 {
		t.Fatalf("post-update answer = %+v, want PoI 1 at length 5", ans.Routes)
	}

	// Closing the surviving sushi place reroutes to the remaining one.
	if _, err := eng.ApplyUpdates(new(UpdateBatch).RemovePoI(1)); err != nil {
		t.Fatal(err)
	}
	ans, err = eng.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Routes) != 1 || ans.Routes[0].PoIs[0] != 2 {
		t.Fatalf("after RemovePoI answer = %+v, want PoI 2", ans.Routes)
	}
}

// buildUpdateFixture returns a tiny engine: start vertex 0, two sushi
// PoIs — vertex 1 at distance 5 and vertex 2 at distance 3.
func buildUpdateFixture() (*Engine, error) {
	nb := NewFoursquareNetworkBuilder("update-fixture")
	v0 := nb.AddVertex(0, 0)
	p1, err := nb.AddPoI(1, 0, "Sushi Restaurant")
	if err != nil {
		return nil, err
	}
	p2, err := nb.AddPoI(0, 1, "Sushi Restaurant")
	if err != nil {
		return nil, err
	}
	if err := nb.AddRoad(v0, p1, 5); err != nil {
		return nil, err
	}
	if err := nb.AddRoad(v0, p2, 3); err != nil {
		return nil, err
	}
	return nb.Build()
}

// TestApplyUpdatesValidation: invalid batches fail atomically, leaving the
// epoch and dataset untouched.
func TestApplyUpdatesValidation(t *testing.T) {
	eng, err := buildUpdateFixture()
	if err != nil {
		t.Fatal(err)
	}
	bad := []*UpdateBatch{
		new(UpdateBatch).SetEdgeWeight(0, 99, 1),                 // unknown vertex
		new(UpdateBatch).SetEdgeWeight(1, 2, 1),                  // missing edge
		new(UpdateBatch).SetEdgeWeight(0, 1, -1),                 // negative weight
		new(UpdateBatch).AddPoI(1, "Sushi Restaurant"),           // already a PoI
		new(UpdateBatch).AddPoI(0),                               // no categories
		new(UpdateBatch).AddPoI(0, "No Such Category"),           // unknown category
		new(UpdateBatch).RemovePoI(0),                            // not a PoI
		new(UpdateBatch).Recategorize(0, "Gift Shop"),            // not a PoI
		new(UpdateBatch).SetEdgeWeight(0, 1, 2).RemoveEdge(0, 1), // conflicting edits
	}
	for i, b := range bad {
		if _, err := eng.ApplyUpdates(b); err == nil {
			t.Errorf("bad batch %d applied without error", i)
		}
	}
	if eng.Epoch() != 0 {
		t.Fatalf("epoch advanced to %d by failed batches", eng.Epoch())
	}
	if res, err := eng.ApplyUpdates(new(UpdateBatch)); err != nil || res.Epoch != 0 {
		t.Fatalf("empty batch: res=%+v err=%v, want no-op at epoch 0", res, err)
	}
}

// TestSnapshotIsolationUnderConcurrency overlaps ApplyUpdates with
// concurrent Search and SearchBatch traffic (run it with -race). Every
// search whose surrounding epoch reads agree must return exactly the
// reference answer of that epoch — a search can never observe a half-
// applied update — and once traffic drains, only one snapshot stays live.
func TestSnapshotIsolationUnderConcurrency(t *testing.T) {
	const rounds = 4
	build := func() *Engine {
		eng, err := Generate("tokyo", 0.08, 3)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}

	// Reference pass: the same deterministic batches applied serially,
	// recording per-epoch answers for a fixed query set.
	ref := build()
	queries, err := ref.Workload(6, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	batches := make([]*UpdateBatch, rounds)
	refAnswers := make([][]*Answer, rounds+1)
	rng := rand.New(rand.NewSource(17))
	record := func(epoch int) {
		refAnswers[epoch] = make([]*Answer, len(queries))
		for i, q := range queries {
			ans, err := ref.Search(q)
			if err != nil {
				t.Fatalf("reference epoch %d query %d: %v", epoch, i, err)
			}
			refAnswers[epoch][i] = ans
		}
	}
	record(0)
	for r := 0; r < rounds; r++ {
		batches[r] = randomBatch(ref, rng, r%2 == 1)
		if _, err := ref.ApplyUpdates(batches[r]); err != nil {
			t.Fatal(err)
		}
		record(r + 1)
	}

	// Concurrent pass: identical engine, identical batches, with search
	// traffic overlapping the updates.
	eng := build()
	profiles := []SearchOptions{{}, {UseCategoryIndex: true}, {ShareCache: true}}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	stop := make(chan struct{})
	for w := 0; w < 6; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			opts := profiles[w%len(profiles)]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				qi := (w + i) % len(queries)
				before := eng.Epoch()
				var got *Answer
				var err error
				if w%2 == 0 {
					got, err = eng.SearchWith(queries[qi], opts)
				} else {
					var all []*Answer
					all, err = eng.SearchBatch(queries[qi:qi+1], BatchOptions{Options: opts, Workers: 1})
					if err == nil {
						got = all[0]
					}
				}
				after := eng.Epoch()
				if err != nil {
					errs <- fmt.Errorf("worker %d: %v", w, err)
					return
				}
				if before == after && !answersMatch(got, refAnswers[before][qi]) {
					errs <- fmt.Errorf("worker %d: epoch %d query %d diverged from the epoch's reference answer", w, before, qi)
					return
				}
			}
		}()
	}
	for r := 0; r < rounds; r++ {
		time.Sleep(20 * time.Millisecond)
		if _, err := eng.ApplyUpdates(batches[r]); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// With traffic drained, every superseded snapshot must have been
	// released when its last searcher checked in.
	deadline := time.Now().Add(2 * time.Second)
	for eng.LiveSnapshots() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("LiveSnapshots = %d after drain, want 1", eng.LiveSnapshots())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if eng.Epoch() != rounds {
		t.Fatalf("epoch = %d, want %d", eng.Epoch(), rounds)
	}
}

// TestIndexRepairIsIncremental: a PoI-only batch must carry every index
// row except the edited PoI's ancestor rows, and the dirty rows must
// repair lazily on the next indexed search.
func TestIndexRepairIsIncremental(t *testing.T) {
	eng, err := Generate("tokyo", 0.1, 21)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.WarmCategoryIndex(); err != nil {
		t.Fatal(err)
	}
	before := eng.CategoryIndexStats()
	if before.RowsBuilt == 0 {
		t.Fatal("warm-up built no rows")
	}

	pois := eng.snap().ds.Graph.PoIVertices()
	leaves := eng.LeafCategories()
	res, err := eng.ApplyUpdates(new(UpdateBatch).Recategorize(pois[0], leaves[0]))
	if err != nil {
		t.Fatal(err)
	}
	if res.IndexInvalidated {
		t.Fatal("PoI-only batch reported full index invalidation")
	}
	if res.RowsDirtied == 0 || res.RowsCarried == 0 {
		t.Fatalf("RowsDirtied=%d RowsCarried=%d, want both > 0", res.RowsDirtied, res.RowsCarried)
	}
	if res.RowsCarried+res.RowsDirtied != before.RowsBuilt {
		t.Fatalf("carried %d + dirtied %d != previously resident %d",
			res.RowsCarried, res.RowsDirtied, before.RowsBuilt)
	}

	// A weight decrease, by contrast, invalidates everything.
	g := eng.snap().ds.Graph
	ts, ws := g.Neighbors(0)
	res2, err := eng.ApplyUpdates(new(UpdateBatch).SetEdgeWeight(0, ts[0], ws[0]*0.5))
	if err != nil {
		t.Fatal(err)
	}
	if !res2.IndexInvalidated || res2.RowsCarried != 0 {
		t.Fatalf("decrease batch: IndexInvalidated=%v RowsCarried=%d, want true/0", res2.IndexInvalidated, res2.RowsCarried)
	}

	// Dirty rows repair lazily: an indexed search rebuilds what it needs
	// and the repair counter moves.
	queries, err := eng.Workload(5, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if _, err := eng.SearchWith(q, SearchOptions{UseCategoryIndex: true}); err != nil {
			t.Fatal(err)
		}
	}
	if st := eng.CategoryIndexStats(); st.RowsRepaired == 0 {
		t.Fatalf("RowsRepaired = 0 after indexed searches on a dirtied index: %+v", st)
	}
}

// TestStaleSidecarRejectedAfterUpdate: a sidecar persisted before an
// update batch must not load against the dataset saved after it.
func TestStaleSidecarRejectedAfterUpdate(t *testing.T) {
	dir := t.TempDir()
	eng, err := Generate("tokyo", 0.08, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.WarmCategoryIndex(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "city.skysr")
	if err := eng.Save(path); err != nil {
		t.Fatal(err)
	}
	staleSidecar, err := os.ReadFile(IndexSidecarPath(path))
	if err != nil {
		t.Fatal(err)
	}

	// Control: the matching sidecar is adopted.
	reopened, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reopened.CategoryIndexStats().FromSidecar {
		t.Fatal("matching sidecar was not adopted")
	}

	// Mutate, save the new dataset, then plant the pre-update sidecar.
	g := eng.snap().ds.Graph
	ts, ws := g.Neighbors(1)
	if _, err := eng.ApplyUpdates(new(UpdateBatch).SetEdgeWeight(1, ts[0], ws[0]+1)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Save(path); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(IndexSidecarPath(path), staleSidecar, 0o644); err != nil {
		t.Fatal(err)
	}
	reopened, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.CategoryIndexStats().FromSidecar {
		t.Fatal("stale pre-update sidecar was adopted against the post-update dataset")
	}
	// The engine still answers correctly by rebuilding lazily.
	queries, err := reopened.Workload(3, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if _, err := reopened.SearchWith(q, SearchOptions{UseCategoryIndex: true}); err != nil {
			t.Fatal(err)
		}
	}
}
