// Flexible requirements: the §6 "complex category requirement" and
// "PoI with multiple categories" extensions. The first stop may be an
// American OR Mexican restaurant but NOT a Taco Place (the paper's own
// example of disjunction + negation); the second stop must be a place that
// is both a Cafe AND a Bakery — satisfiable only by a multi-category PoI.
//
// Run with: go run ./examples/flexquery
package main

import (
	"fmt"
	"log"

	"skysr"
)

func main() {
	nb := skysr.NewFoursquareNetworkBuilder("FlexTown")

	start := nb.AddVertex(0, 0)
	v1 := nb.AddVertex(0.002, 0)
	v2 := nb.AddVertex(0.004, 0)
	v3 := nb.AddVertex(0.006, 0)
	must(nb.AddRoad(start, v1, 200))
	must(nb.AddRoad(v1, v2, 200))
	must(nb.AddRoad(v2, v3, 200))

	// Closest would-be match is a Taco Place — excluded by the query.
	taco, err := nb.AddPoI(0.0021, 0, "Taco Place")
	must(err)
	must(nb.AddRoad(v1, taco, 10))
	// A Burrito Place (Mexican subtree, semantic match) a bit farther.
	burrito, err := nb.AddPoI(0.0041, 0, "Burrito Place")
	must(err)
	must(nb.AddRoad(v2, burrito, 20))
	// An exact Mexican Restaurant, farther still — the perfect match.
	mexican, err := nb.AddPoI(0.0061, 0, "Mexican Restaurant")
	must(err)
	must(nb.AddRoad(v3, mexican, 30))

	// A combined cafe-bakery (multi-category PoI) and a plain tea room.
	cafeBakery, err := nb.AddPoI(0.0042, 0, "Cafe", "Bakery")
	must(err)
	must(nb.AddRoad(v2, cafeBakery, 15))
	plainCafe, err := nb.AddPoI(0.0022, 0, "Tea Room")
	must(err)
	must(nb.AddRoad(v1, plainCafe, 5))

	eng, err := nb.Build()
	must(err)

	query := skysr.Query{
		Start: start,
		Via: []skysr.Requirement{
			skysr.Excluding(
				skysr.AnyOf(
					skysr.Category("American Restaurant"),
					skysr.Category("Mexican Restaurant"),
				),
				"Taco Place",
			),
			skysr.AllOf(
				skysr.Category("Cafe"),
				skysr.Category("Bakery"),
			),
		},
	}
	ans, err := eng.Search(query)
	must(err)

	fmt.Println("query: (American or Mexican, not Taco Place) → (Cafe and Bakery)")
	for _, r := range ans.Routes {
		perfect := ""
		if r.SemanticScore == 0 {
			perfect = "   ← perfect match"
		}
		fmt.Printf("  %s%s\n", r, perfect)
	}
	fmt.Println("\nthe Taco Place next door never appears at position 1 (negation), and")
	fmt.Println("only the dual-category cafe-bakery satisfies the conjunction perfectly;")
	fmt.Println("the looser Food-tree alternatives remain as shorter skyline options.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
