// NYC trip: the paper's motivating Table 1 scenario. A user in New York
// wants a cupcake shop, then an art museum, then a jazz club. The exact
// match is a long walk; the SkySR query also surfaces progressively
// shorter routes that relax categories within their trees (Dessert Shop
// for Cupcake Shop, Museum for Art Museum, Music Venue for Jazz Club).
//
// The network is a hand-built Manhattan-flavoured grid with distances in
// meters, laid out so the skyline reproduces the Table 1 shape: several
// routes, each shorter and semantically looser than the previous.
//
// Run with: go run ./examples/nyctrip
package main

import (
	"fmt"
	"log"

	"skysr"
)

func main() {
	nb := skysr.NewFoursquareNetworkBuilder("LittleManhattan")

	// A 4×4 street grid: 500 m avenues east-west, 410 m streets
	// north-south (the slight asymmetry avoids degenerate distance ties).
	const n = 4
	var grid [n][n]skysr.VertexID
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			grid[r][c] = nb.AddVertex(-74.00+float64(c)*0.006, 40.72+float64(r)*0.0037)
		}
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if c+1 < n {
				must(nb.AddRoad(grid[r][c], grid[r][c+1], 500))
			}
			if r+1 < n {
				must(nb.AddRoad(grid[r][c], grid[r+1][c], 410))
			}
		}
	}
	start := grid[0][0]

	poi := func(r, c int, along float64, category string) skysr.VertexID {
		// Embed on the avenue between grid[r][c] and grid[r][c+1].
		lon1, lat1 := -74.00+float64(c)*0.006, 40.72+float64(r)*0.0037
		lon2 := -74.00 + float64(c+1)*0.006
		v, err := nb.EmbedPoI(lon1+(lon2-lon1)*along, lat1, category)
		if err != nil {
			log.Fatal(err)
		}
		return v
	}

	// The literal targets, far from the start.
	poi(3, 2, 0.4, "Cupcake Shop")
	poi(3, 0, 0.5, "Art Museum")
	poi(2, 2, 0.8, "Jazz Club")
	// The flexible stand-ins, much closer.
	poi(0, 0, 0.5, "Ice Cream Shop")  // Dessert Shop tree-mate of Cupcake Shop
	poi(0, 1, 0.33, "History Museum") // Museum tree-mate of Art Museum
	poi(1, 0, 0.61, "Concert Hall")   // Music Venue tree-mate of Jazz Club
	poi(1, 1, 0.18, "Rock Club")

	eng, err := nb.Build()
	must(err)

	ans, err := eng.Search(skysr.Query{
		Start: start,
		Via: []skysr.Requirement{
			skysr.Category("Cupcake Shop"),
			skysr.Category("Art Museum"),
			skysr.Category("Jazz Club"),
		},
	})
	must(err)

	fmt.Println("Table 1-style skyline for ⟨Cupcake Shop, Art Museum, Jazz Club⟩:")
	fmt.Printf("%-10s  %s\n", "distance", "sequenced route")
	for _, r := range ans.Routes {
		fmt.Printf("%7.0f m   %s  (semantic %.3f)\n", r.LengthScore, names(r), r.SemanticScore)
	}
	fmt.Println("\nThe existing approaches would return only the first exact-match row;")
	fmt.Println("the SkySR query adds the shorter semantically matching alternatives.")
}

func names(r skysr.RouteInfo) string {
	s := ""
	for i, n := range r.PoINames {
		if i > 0 {
			s += " → "
		}
		s += n
	}
	return s
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
