// Quickstart: the paper's running example (Figure 1, Example 1.1,
// Table 4). Builds the 13-PoI road network, asks for ⟨Asian Restaurant,
// Arts & Entertainment, Gift Shop⟩ from vq, and prints the skyline:
// the strictly matching route and the shorter semantically matching one.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"skysr"
)

func main() {
	eng, vq, categories := skysr.PaperExample()
	fmt.Println("network:", eng.Stats())
	fmt.Printf("query:   start v%d via %v\n\n", vq, categories)

	via := make([]skysr.Requirement, len(categories))
	for i, c := range categories {
		via[i] = skysr.Category(c)
	}
	ans, err := eng.SearchWith(
		skysr.Query{Start: vq, Via: via},
		skysr.SearchOptions{ExpandPaths: true},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d skyline sequenced routes (found by %s in %s):\n",
		len(ans.Routes), ans.Algorithm, ans.Elapsed)
	for i, r := range ans.Routes {
		fmt.Printf("%2d. %s\n", i+1, r)
		fmt.Printf("    full path: %v\n", r.Path)
	}

	// The route with semantic score 0 matches the request literally;
	// the other swaps the Asian restaurant for an Italian one (same Food
	// tree) and is shorter — exactly the paper's Table 4 outcome.
	st := ans.Stats
	fmt.Printf("\ninstrumentation: NNinit seeded %d routes (perfect route length %.1f),\n",
		st.InitRoutes, st.InitPerfectL)
	fmt.Printf("  %d modified-Dijkstra runs (%d served from cache), %d vertices settled\n",
		st.MDijkstraRuns, st.CacheHits, st.SettledVertices)
}
