// Live updates: the engine serving while its road network changes. A
// small town has two sushi restaurants — one close, one farther away.
// First the close one wins; then rush-hour congestion triples the road
// to it (SetEdgeWeight) and the skyline reroutes; then the far one shuts
// down entirely (RemovePoI) and the original route comes back despite the
// traffic. Each ApplyUpdates batch publishes a new dataset epoch:
// in-flight queries keep the snapshot they started on, later queries see
// the new version, and the category-level distance index is repaired
// incrementally instead of rebuilt (the printed stats show rows carried
// across each update versus lazily repaired after it).
//
// Run with: go run ./examples/liveupdate
package main

import (
	"fmt"
	"log"

	"skysr"
)

func main() {
	eng := buildTown()
	query := skysr.Query{
		Start: 0,
		Via:   []skysr.Requirement{skysr.Category("Sushi Restaurant"), skysr.Category("Gift Shop")},
	}
	opts := skysr.SearchOptions{UseCategoryIndex: true}
	if _, err := eng.WarmCategoryIndex(); err != nil {
		log.Fatal(err)
	}

	show := func(phase string) {
		ans, err := eng.SearchWith(query, opts)
		if err != nil {
			log.Fatal(err)
		}
		st := eng.CategoryIndexStats()
		fmt.Printf("%s (epoch %d):\n", phase, eng.Epoch())
		for _, r := range ans.Routes {
			fmt.Printf("  %s\n", r)
		}
		fmt.Printf("  index: %d rows resident, %d carried over, %d repaired\n\n",
			st.RowsBuilt, st.RowsCarried, st.RowsRepaired)
	}

	show("before any update")

	// Rush hour: the shortcut to the close sushi place triples in cost.
	// A weight increase cannot invalidate any distance lower bound, so
	// every index row is carried into the new epoch unchanged.
	res, err := eng.ApplyUpdates(new(skysr.UpdateBatch).SetEdgeWeight(0, 1, 9))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update #1: congestion on road 0–1 → epoch %d, %d rows carried, %d dirtied\n\n",
		res.Epoch, res.RowsCarried, res.RowsDirtied)
	show("after congestion")

	// The far sushi restaurant closes. Only the rows of the categories it
	// belonged to (Sushi Restaurant and its ancestors) are dirtied; they
	// rebuild lazily on the next query that needs them.
	res, err = eng.ApplyUpdates(new(skysr.UpdateBatch).RemovePoI(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update #2: sushi place @2 closes → epoch %d, %d rows carried, %d dirtied\n\n",
		res.Epoch, res.RowsCarried, res.RowsDirtied)
	show("after the closure")

	fmt.Printf("the engine served all three phases from one process; %d snapshot(s) live\n",
		eng.LiveSnapshots())
}

// buildTown assembles the example network:
//
//	start(0) --1-- sushi(1) --2-- gifts(3)
//	start(0) --4-- sushi(2) --2-- gifts(3)   (the long way around)
func buildTown() *skysr.Engine {
	nb := skysr.NewFoursquareNetworkBuilder("liveupdate-town")
	start := nb.AddVertex(0, 0)
	near, err := nb.AddPoI(1, 0, "Sushi Restaurant")
	check(err)
	far, err := nb.AddPoI(0, 1, "Sushi Restaurant")
	check(err)
	gifts, err := nb.AddPoI(1, 1, "Gift Shop")
	check(err)
	check(nb.AddRoad(start, near, 1))
	check(nb.AddRoad(start, far, 4))
	check(nb.AddRoad(near, gifts, 2))
	check(nb.AddRoad(far, gifts, 2))
	eng, err := nb.Build()
	check(err)
	return eng
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
