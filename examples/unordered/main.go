// Unordered errands: the §6 "skyline trip planning query" without category
// order. Three errands — pharmacy, grocery store, bookstore — lie around
// the start in an order that makes the literal visiting order wasteful;
// the unordered query finds the better permutation while keeping the
// skyline semantics.
//
// Run with: go run ./examples/unordered
package main

import (
	"fmt"
	"log"

	"skysr"
)

func main() {
	nb := skysr.NewFoursquareNetworkBuilder("Errands")

	// West -- start -- east layout: the pharmacy is a short hop west, the
	// grocery and bookstore lie successively east, so the literal order
	// ⟨grocery, pharmacy, bookstore⟩ zigzags across town.
	start := nb.AddVertex(0, 0)
	west := nb.AddVertex(-0.001, 0)
	east1 := nb.AddVertex(0.005, 0)
	east2 := nb.AddVertex(0.01, 0)
	must(nb.AddRoad(start, west, 100))
	must(nb.AddRoad(start, east1, 500))
	must(nb.AddRoad(east1, east2, 500))

	pharmacy, err := nb.AddPoI(-0.0011, 0, "Pharmacy")
	must(err)
	must(nb.AddRoad(west, pharmacy, 10))
	grocery, err := nb.AddPoI(0.0051, 0, "Grocery Store")
	must(err)
	must(nb.AddRoad(east1, grocery, 10))
	books, err := nb.AddPoI(0.0101, 0, "Bookstore")
	must(err)
	must(nb.AddRoad(east2, books, 10))

	eng, err := nb.Build()
	must(err)

	via := []skysr.Requirement{
		skysr.Category("Grocery Store"),
		skysr.Category("Pharmacy"),
		skysr.Category("Bookstore"),
	}

	ordered, err := eng.Search(skysr.Query{Start: start, Via: via})
	must(err)
	unordered, err := eng.Search(skysr.Query{Start: start, Via: via, Unordered: true})
	must(err)

	fmt.Println("ordered ⟨Grocery, Pharmacy, Bookstore⟩:")
	for _, r := range ordered.Routes {
		fmt.Printf("  %s\n", r)
	}
	fmt.Println("unordered {Grocery, Pharmacy, Bookstore}:")
	for _, r := range unordered.Routes {
		fmt.Printf("  %s\n", r)
	}
	// Compare the perfectly matching (semantic = 0) routes: the ordered
	// skyline may also contain a shorter "swap the roles" route where the
	// pharmacy semantically stands in for the grocery and vice versa.
	saved := perfectLength(ordered) - perfectLength(unordered)
	fmt.Printf("\nfreeing the order saves %.0f distance units on the perfectly matching route\n", saved)
}

func perfectLength(a *skysr.Answer) float64 {
	for _, r := range a.Routes {
		if r.SemanticScore == 0 {
			return r.LengthScore
		}
	}
	return 0
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
