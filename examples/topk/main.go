// Top-k café crawl: real trip-planning traffic rarely wants the single
// optimal route per similarity level — it wants alternatives. This
// example builds a small district where three coffee shops, two
// bookstores and two bars sit at different walking distances, asks for
// the classic skyline of ⟨Coffee Shop, Bookstore, Sake Bar⟩, then re-asks with
// Engine.SearchTopK for the 5 best score-distinct routes: the ranked
// list keeps every skyline route (band monotonicity) and fills in the
// runner-up combinations a "show me more options" button needs, each
// with its rank, length and semantic score. The k=1 call is byte-
// identical to Search — top-k is a strict generalization.
//
// Run with: go run ./examples/topk
package main

import (
	"fmt"
	"log"

	"skysr"
)

func main() {
	nb := skysr.NewFoursquareNetworkBuilder("CaféCrawl")

	// A walkable grid; distances in meters.
	start := nb.AddVertex(2.350, 48.855)
	a := nb.AddVertex(2.352, 48.855)
	b := nb.AddVertex(2.354, 48.855)
	c := nb.AddVertex(2.356, 48.855)
	must(nb.AddRoad(start, a, 200))
	must(nb.AddRoad(a, b, 200))
	must(nb.AddRoad(b, c, 200))

	addPoI := func(at skysr.VertexID, dist float64, cat string) {
		p, err := nb.AddPoI(2.35, 48.856, cat)
		must(err)
		must(nb.AddRoad(at, p, dist))
	}
	addPoI(start, 50, "Coffee Shop") // around the corner
	addPoI(a, 80, "Coffee Shop")     // one block in
	addPoI(b, 40, "Tea Room")        // same Food tree: a semantic alternative
	addPoI(a, 120, "Bookstore")
	addPoI(b, 90, "Bookstore")
	addPoI(b, 150, "Pub") // "Pub" and "Sake Bar" are both Bars
	addPoI(c, 60, "Sake Bar")

	eng, err := nb.Build()
	must(err)

	q := skysr.Query{Start: start, Via: []skysr.Requirement{
		skysr.Category("Coffee Shop"),
		skysr.Category("Bookstore"),
		skysr.Category("Sake Bar"),
	}}

	sky, err := eng.Search(q)
	must(err)
	fmt.Printf("classic skyline: %d route(s)\n", len(sky.Routes))

	const k = 5
	ans, err := eng.SearchTopK(q, k, skysr.SearchOptions{})
	must(err)
	fmt.Printf("top-%d: %d ranked route(s) over %d similarity level(s), %d extra pops\n",
		k, len(ans.Routes), ans.Stats.TopKLevels, ans.Stats.TopKExtraPops)
	for _, r := range ans.Routes {
		fmt.Printf("%2d. %s\n", r.Rank, r)
	}

	// Every skyline route survives into the ranked list.
	kept := 0
	for _, s := range sky.Routes {
		for _, r := range ans.Routes {
			if r.LengthScore == s.LengthScore && r.SemanticScore == s.SemanticScore {
				kept++
				break
			}
		}
	}
	fmt.Printf("all %d skyline route(s) kept among the top-%d alternatives\n", kept, k)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
