// Rated cafés: the §9 future-work extension implemented by this library —
// PoI ratings as a third skyline criterion. The nearest café has two
// stars; the one across town has five. The plain SkySR query never shows
// the distant café (same category, same semantic score, longer walk); the
// three-criteria query surfaces it as a Pareto-optimal alternative.
//
// Run with: go run ./examples/ratedcafe
package main

import (
	"fmt"
	"log"

	"skysr"
)

func main() {
	tb := skysr.NewTaxonomyBuilder().
		Root("Food").
		Child("Food", "Cafe").
		Child("Food", "Bakery").
		Root("Shop & Service").
		Child("Shop & Service", "Bookstore")
	nb := skysr.NewNetworkBuilder("RatedTown", tb)

	start := nb.AddVertex(0, 0)
	a := nb.AddVertex(0.002, 0)
	b := nb.AddVertex(0.004, 0)
	must(nb.AddRoad(start, a, 200))
	must(nb.AddRoad(a, b, 200))

	// Cafés: near with a poor rating, far with a great one.
	nearCafe, err := nb.AddPoI(0.0021, 0, "Cafe")
	must(err)
	must(nb.AddRoad(a, nearCafe, 10))
	must(nb.SetRating(nearCafe, 2.0))
	farCafe, err := nb.AddPoI(0.0041, 0, "Cafe")
	must(err)
	must(nb.AddRoad(b, farCafe, 10))
	must(nb.SetRating(farCafe, 5.0))

	// A bookstore for the second stop, nicely in between.
	books, err := nb.AddPoI(0.0022, 0.0001, "Bookstore")
	must(err)
	must(nb.AddRoad(a, books, 20))
	must(nb.SetRating(books, 4.0))

	eng, err := nb.Build()
	must(err)

	via := []skysr.Requirement{skysr.Category("Cafe"), skysr.Category("Bookstore")}

	plain, err := eng.Search(skysr.Query{Start: start, Via: via})
	must(err)
	fmt.Println("two criteria (length, semantic):")
	for _, r := range plain.Routes {
		fmt.Printf("  %s\n", r)
	}

	rated, err := eng.Search(skysr.Query{Start: start, Via: via, IncludeRatings: true})
	must(err)
	fmt.Println("three criteria (length, semantic, rating):")
	for _, r := range rated.Routes {
		fmt.Printf("  %s\n", r)
	}

	fmt.Println("\nthe five-star café only appears once ratings join the skyline —")
	fmt.Println("the paper's §9 'many attributes of a PoI (e.g., ratings)' extension.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
