// Tokyo night: the paper's §7.5 use case (Table 9, Figure 7). From the
// current location, visit a Beer Garden, a Sushi Restaurant and a Sake Bar
// in this order, then finish at the hotel — the "SkySR with destination"
// extension (§6). In the Foursquare hierarchy "Bar" covers both Beer
// Garden and Sake Bar, so a much shorter route that substitutes a nearby
// Bar for the distant Beer Garden appears on the skyline alongside the
// literal route, mirroring the paper's two representative routes.
//
// Run with: go run ./examples/tokyonight
package main

import (
	"fmt"
	"log"

	"skysr"
)

func main() {
	nb := skysr.NewFoursquareNetworkBuilder("TokyoNight")

	// A main street with side alleys; distances in meters.
	start := nb.AddVertex(139.700, 35.660)
	a := nb.AddVertex(139.704, 35.660)
	b := nb.AddVertex(139.708, 35.660)
	c := nb.AddVertex(139.712, 35.660)
	hotel := nb.AddVertex(139.716, 35.660)
	must(nb.AddRoad(start, a, 400))
	must(nb.AddRoad(a, b, 400))
	must(nb.AddRoad(b, c, 400))
	must(nb.AddRoad(c, hotel, 400))

	// The distant literal Beer Garden sits far off the main street.
	far := nb.AddVertex(139.700, 35.690)
	must(nb.AddRoad(start, far, 3000))
	beerGarden, err := nb.AddPoI(139.701, 35.690, "Beer Garden")
	must(err)
	must(nb.AddRoad(far, beerGarden, 100))

	// The rest of the evening lies along the way to the hotel.
	pub, err := nb.AddPoI(139.7045, 35.6605, "Pub") // a Bar, like Beer Garden
	must(err)
	must(nb.AddRoad(a, pub, 50))
	sushi, err := nb.AddPoI(139.7085, 35.6605, "Sushi Restaurant")
	must(err)
	must(nb.AddRoad(b, sushi, 60))
	sake, err := nb.AddPoI(139.7125, 35.6605, "Sake Bar")
	must(err)
	must(nb.AddRoad(c, sake, 40))

	eng, err := nb.Build()
	must(err)

	ans, err := eng.SearchWith(skysr.Query{
		Start: start,
		Via: []skysr.Requirement{
			skysr.Category("Beer Garden"),
			skysr.Category("Sushi Restaurant"),
			skysr.Category("Sake Bar"),
		},
		Destination:    hotel,
		HasDestination: true,
	}, skysr.SearchOptions{ExpandPaths: true})
	must(err)

	fmt.Println("Table 9-style skyline for ⟨Beer Garden, Sushi Restaurant, Sake Bar⟩ → hotel:")
	fmt.Printf("%-10s  %s\n", "distance", "sequenced route")
	for _, r := range ans.Routes {
		fmt.Printf("%7.0f m   %s  (semantic %.3f)\n", r.LengthScore, names(r), r.SemanticScore)
	}
	fmt.Println("\nThe first route detours 6 km to the literal Beer Garden; the second")
	fmt.Println("follows the paper's observation that a Bar on the way home makes the")
	fmt.Println("evening dramatically shorter — which one is best depends on the user.")
}

func names(r skysr.RouteInfo) string {
	s := ""
	for i, n := range r.PoINames {
		if i > 0 {
			s += " → "
		}
		s += n
	}
	return s
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
