// Batch: serving a multi-query workload with Engine.SearchBatch. Generates
// a synthetic city, builds a production-style workload (popular category
// templates queried from many start vertices), answers it both with a
// serial Search loop and with SearchBatch over a bounded worker pool, and
// verifies the two agree route for route — batching and cross-query cache
// sharing never change answers, only throughput.
//
// Run with: go run ./examples/batch
package main

import (
	"fmt"
	"log"
	"time"

	"skysr"
)

func main() {
	eng, err := skysr.Generate("tokyo", 0.2, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("network:", eng.Stats())

	queries, err := eng.Workload(40, 3, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d queries of 3 categories each\n\n", len(queries))

	// Serial baseline: one Search call per query.
	began := time.Now()
	serial := make([]*skysr.Answer, len(queries))
	for i, q := range queries {
		if serial[i], err = eng.Search(q); err != nil {
			log.Fatal(err)
		}
	}
	serialTime := time.Since(began)

	// The same workload through the batch path: a bounded worker pool with
	// pooled searcher workspaces and cross-query cache sharing.
	began = time.Now()
	answers, err := eng.SearchBatch(queries, skysr.BatchOptions{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	batchTime := time.Since(began)

	routes := 0
	for i, ans := range answers {
		if len(ans.Routes) != len(serial[i].Routes) {
			log.Fatalf("query %d: batch %d routes, serial %d", i, len(ans.Routes), len(serial[i].Routes))
		}
		for k := range ans.Routes {
			if ans.Routes[k].LengthScore != serial[i].Routes[k].LengthScore ||
				ans.Routes[k].SemanticScore != serial[i].Routes[k].SemanticScore {
				log.Fatalf("query %d route %d: batch answer differs from serial", i, k)
			}
		}
		routes += len(ans.Routes)
	}
	fmt.Printf("batch answers match the serial answers: %d skyline routes over %d queries\n",
		routes, len(answers))
	fmt.Printf("serial loop: %s   SearchBatch(4 workers): %s\n",
		serialTime.Round(time.Millisecond), batchTime.Round(time.Millisecond))

	// A taste of the output: the first query's skyline.
	fmt.Println("\nfirst query's skyline:")
	for i, r := range answers[0].Routes {
		fmt.Printf("%2d. %s\n", i+1, r)
	}
}
