package skysr_test

import (
	"fmt"
	"log"

	"skysr"
)

// ExampleEngine_Search answers the paper's running example (Figure 1,
// Table 4): from vq, visit an Asian restaurant, an arts & entertainment
// venue and a gift shop. The skyline holds the literal match and a
// shorter route that substitutes an Italian restaurant (same Food tree).
func ExampleEngine_Search() {
	eng, start, categories := skysr.PaperExample()
	via := make([]skysr.Requirement, len(categories))
	for i, c := range categories {
		via[i] = skysr.Category(c)
	}
	ans, err := eng.Search(skysr.Query{Start: start, Via: via})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range ans.Routes {
		fmt.Println(r)
	}
	// Output:
	// Italian Restaurant@6 → Arts & Entertainment@9 → Gift Shop@8  (length 10.5, semantic 0.500)
	// Asian Restaurant@10 → Arts & Entertainment@12 → Gift Shop@13  (length 13.0, semantic 0.000)
}

// ExampleEngine_SearchBatch fans a small workload out over a worker pool.
// Batch answers are identical to a serial Search loop's, in query order.
func ExampleEngine_SearchBatch() {
	eng, start, categories := skysr.PaperExample()
	queries := []skysr.Query{
		{Start: start, Via: []skysr.Requirement{skysr.Category(categories[0])}},
		{Start: start, Via: []skysr.Requirement{skysr.Category("Gift Shop")}},
	}
	answers, err := eng.SearchBatch(queries, skysr.BatchOptions{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	for i, ans := range answers {
		fmt.Printf("query %d: %d route(s), best %s\n", i, len(ans.Routes), ans.Routes[0])
	}
	// Output:
	// query 0: 1 route(s), best Asian Restaurant@2  (length 6.0, semantic 0.000)
	// query 1: 1 route(s), best Gift Shop@8  (length 10.5, semantic 0.000)
}

// ExampleEngine_SearchTopK asks the paper's running example for ranked
// alternatives: the 3 shortest score-distinct routes per similarity
// level instead of the single best. The two Table 4 skyline routes keep
// their spots (rank 1 and 4) and the band fills in the runner-ups a
// "show me more options" client needs.
func ExampleEngine_SearchTopK() {
	eng, start, categories := skysr.PaperExample()
	via := make([]skysr.Requirement, len(categories))
	for i, c := range categories {
		via[i] = skysr.Category(c)
	}
	ans, err := eng.SearchTopK(skysr.Query{Start: start, Via: via}, 3, skysr.SearchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range ans.Routes {
		fmt.Printf("%d. %s\n", r.Rank, r)
	}
	// Output:
	// 1. Italian Restaurant@6 → Arts & Entertainment@9 → Gift Shop@8  (length 10.5, semantic 0.500)
	// 2. Italian Restaurant@1 → Arts & Entertainment@9 → Gift Shop@8  (length 11.0, semantic 0.500)
	// 3. Asian Restaurant@2 → Arts & Entertainment@5 → Hobby Shop@7  (length 12.0, semantic 0.500)
	// 4. Asian Restaurant@10 → Arts & Entertainment@12 → Gift Shop@13  (length 13.0, semantic 0.000)
	// 5. Asian Restaurant@2 → Arts & Entertainment@5 → Gift Shop@8  (length 15.0, semantic 0.000)
	// 6. Asian Restaurant@2 → Arts & Entertainment@5 → Gift Shop@13  (length 15.5, semantic 0.000)
}

// ExampleEngine_ApplyUpdates mutates a serving engine: congestion triples
// a road weight, a later query reroutes, and the dataset epoch advances
// while in-flight queries keep the snapshot they started on.
func ExampleEngine_ApplyUpdates() {
	nb := skysr.NewFoursquareNetworkBuilder("example-town")
	start := nb.AddVertex(0, 0)
	near, _ := nb.AddPoI(1, 0, "Sushi Restaurant")
	far, _ := nb.AddPoI(0, 1, "Sushi Restaurant")
	if err := nb.AddRoad(start, near, 1); err != nil {
		log.Fatal(err)
	}
	if err := nb.AddRoad(start, far, 4); err != nil {
		log.Fatal(err)
	}
	eng, err := nb.Build()
	if err != nil {
		log.Fatal(err)
	}

	q := skysr.Query{Start: start, Via: []skysr.Requirement{skysr.Category("Sushi Restaurant")}}
	ans, _ := eng.Search(q)
	fmt.Printf("epoch %d: %s\n", eng.Epoch(), ans.Routes[0])

	if _, err := eng.ApplyUpdates(new(skysr.UpdateBatch).SetEdgeWeight(start, near, 9)); err != nil {
		log.Fatal(err)
	}
	ans, _ = eng.Search(q)
	fmt.Printf("epoch %d: %s\n", eng.Epoch(), ans.Routes[0])
	// Output:
	// epoch 0: Sushi Restaurant@1  (length 1.0, semantic 0.000)
	// epoch 1: Sushi Restaurant@2  (length 4.0, semantic 0.000)
}
