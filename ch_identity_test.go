package skysr

import (
	"context"
	"math"
	"testing"
)

// identicalAnswers requires bit-identical results: same routes, same PoIs,
// same score bits. The UseCH profile promises byte-identity with the plain
// path, not just equivalence.
func identicalAnswers(t *testing.T, tag string, want, got *Answer) {
	t.Helper()
	if len(want.Routes) != len(got.Routes) {
		t.Fatalf("%s: %d routes != %d routes", tag, len(got.Routes), len(want.Routes))
	}
	for i := range want.Routes {
		w, g := want.Routes[i], got.Routes[i]
		if math.Float64bits(w.LengthScore) != math.Float64bits(g.LengthScore) ||
			math.Float64bits(w.SemanticScore) != math.Float64bits(g.SemanticScore) {
			t.Fatalf("%s route %d: scores (%v,%v) != (%v,%v)", tag, i,
				g.LengthScore, g.SemanticScore, w.LengthScore, w.SemanticScore)
		}
		if len(w.PoIs) != len(g.PoIs) {
			t.Fatalf("%s route %d: PoI count differs", tag, i)
		}
		for j := range w.PoIs {
			if w.PoIs[j] != g.PoIs[j] {
				t.Fatalf("%s route %d: PoI %d: %d != %d", tag, i, j, g.PoIs[j], w.PoIs[j])
			}
		}
	}
}

// chWorkload runs the same destination-carrying workload plain and with
// UseCH and requires identical answers; returns how many UseCH queries
// actually exercised the CH leg bound.
func chWorkload(t *testing.T, eng *Engine, preset string, run func(q Query, opts SearchOptions) (*Answer, error)) int64 {
	t.Helper()
	queries, err := eng.Workload(10, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	var lbRuns int64
	for i, q := range queries {
		if i%2 == 0 {
			q.HasDestination = true
			q.Destination = eng.RandomVertex(int64(100 + i))
		}
		want, err := run(q, SearchOptions{})
		if err != nil {
			t.Fatalf("%s query %d plain: %v", preset, i, err)
		}
		got, err := run(q, SearchOptions{UseCH: true})
		if err != nil {
			t.Fatalf("%s query %d UseCH: %v", preset, i, err)
		}
		identicalAnswers(t, preset, want, got)
		if got.Stats != nil {
			lbRuns += got.Stats.CHLegLBRuns
		}
	}
	return lbRuns
}

// TestCHIdentityAcrossPresets: with a warmed overlay, UseCH answers are
// bit-identical to plain Search on all three paper presets, for ordered
// queries with and without destinations — and the destination queries
// really go through the CH bound.
func TestCHIdentityAcrossPresets(t *testing.T) {
	for _, preset := range []string{"tokyo", "nyc", "cal"} {
		eng, err := Generate(preset, 0.25, 42)
		if err != nil {
			t.Fatal(err)
		}
		st, err := eng.WarmCH(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Built || st.Stale {
			t.Fatalf("%s: overlay not serving after WarmCH: %+v", preset, st)
		}
		lbRuns := chWorkload(t, eng, preset, eng.SearchWith)
		if lbRuns == 0 {
			t.Errorf("%s: no query exercised the CH leg bound", preset)
		}
	}
}

// TestCHIdentityTopK: the k-skyband enumeration is bit-identical under
// UseCH too.
func TestCHIdentityTopK(t *testing.T) {
	eng, err := Generate("tokyo", 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.WarmCH(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	chWorkload(t, eng, "tokyo/top4", func(q Query, opts SearchOptions) (*Answer, error) {
		return eng.SearchTopK(q, 4, opts)
	})
}

// TestCHIdentityTimeDependent: on a time-dependent dataset the CH bounds
// (over the lower-bound weight column) prune destination legs while the
// survivors are re-priced by the exact time-dependent search — SearchAt
// answers stay bit-identical.
func TestCHIdentityTimeDependent(t *testing.T) {
	eng, err := Generate("tokyo", 0.25, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AttachTimeProfiles(0.4, 5); err != nil {
		t.Fatal(err)
	}
	if !eng.HasTimeProfiles() {
		t.Fatal("no profiles attached")
	}
	if _, err := eng.WarmCH(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	for _, depart := range []float64{0, 8.5 * 3600, 17 * 3600} {
		lbRuns := chWorkload(t, eng, "tokyo/td", func(q Query, opts SearchOptions) (*Answer, error) {
			return eng.SearchAt(q, depart, opts)
		})
		if lbRuns == 0 {
			t.Errorf("depart %v: no query exercised the CH leg bound", depart)
		}
	}
}

// TestCHFallbackWithoutOverlay: UseCH on an engine that never warmed the
// overlay silently serves the plain path.
func TestCHFallbackWithoutOverlay(t *testing.T) {
	eng, err := Generate("tokyo", 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st := eng.CHInfo(); st.Built {
		t.Fatalf("overlay materialized unbidden: %+v", st)
	}
	lbRuns := chWorkload(t, eng, "tokyo/cold", eng.SearchWith)
	if lbRuns != 0 {
		t.Fatalf("CH leg bound ran %d times without an overlay", lbRuns)
	}
}

// TestCHWarmProgressAndReuse: progress reaches the full contraction count
// and a second WarmCH reuses the fresh overlay instead of rebuilding.
func TestCHWarmProgressAndReuse(t *testing.T) {
	eng, err := Generate("tokyo", 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	var lastDone, total int
	st, err := eng.WarmCH(context.Background(), func(done, n int) { lastDone, total = done, n })
	if err != nil {
		t.Fatal(err)
	}
	if lastDone != total || total != eng.NumVertices() {
		t.Fatalf("progress ended at %d/%d, want %d", lastDone, total, eng.NumVertices())
	}
	again, err := eng.WarmCH(context.Background(), func(done, n int) { t.Error("rebuilt a fresh overlay") })
	if err != nil {
		t.Fatal(err)
	}
	if again != st {
		t.Fatalf("second WarmCH returned %+v, want %+v", again, st)
	}
}
